package tuner

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/checkpoint"
	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/safety"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// CheckpointFileName is the snapshot file a session maintains inside its
// checkpoint directory. One file, atomically replaced, always the latest
// consistent state.
const CheckpointFileName = "hunter.ckpt"

// CheckpointPolicy configures durable session snapshots.
type CheckpointPolicy struct {
	// Dir is the directory the checkpoint file is written into (created
	// on first write). Empty disables periodic checkpointing.
	Dir string
	// Every is the number of stress waves between snapshots (default 1).
	Every int
	// StopAfterWaves, when positive, makes the session checkpoint and
	// stop (ErrStopRequested) once that many waves have run — the
	// "kill after wave k" hook the resume-identity tests and CI use.
	StopAfterWaves int
}

// ErrStopRequested reports that the session wrote its checkpoint and
// stopped because CheckpointPolicy.StopAfterWaves was reached. The run can
// be continued from the checkpoint with ResumeSession.
var ErrStopRequested = fmt.Errorf("tuner: stopped at requested wave after checkpoint")

// WaveCount returns the number of stress waves run so far (it keeps
// counting across a resume).
func (s *Session) WaveCount() int { return s.waveCount }

// CheckpointPath returns the session's checkpoint file path ("" when
// checkpointing is disabled).
func (s *Session) CheckpointPath() string {
	p := s.Req.Checkpoint
	if p == nil || p.Dir == "" {
		return ""
	}
	return filepath.Join(p.Dir, CheckpointFileName)
}

// CheckpointBarrier is called by tuners at algorithm-safe points — moments
// where algo fully reflects every sample the session has produced. If a
// snapshot is due under the session's policy it is written (charging zero
// virtual time); if the policy's stop wave has been reached the checkpoint
// is written unconditionally and ErrStopRequested is returned. algo may be
// nil for tuners with no durable state of their own.
func (s *Session) CheckpointBarrier(algo checkpoint.Snapshotter) error {
	p := s.Req.Checkpoint
	if p == nil {
		return nil
	}
	stop := p.StopAfterWaves > 0 && s.waveCount >= p.StopAfterWaves
	every := p.Every
	if every <= 0 {
		every = 1
	}
	due := p.Dir != "" && s.waveCount-s.lastCkptWave >= every
	if !due && !stop {
		return nil
	}
	if p.Dir != "" {
		if err := s.WriteCheckpoint(algo); err != nil {
			return err
		}
	}
	if stop {
		return ErrStopRequested
	}
	return nil
}

// sessionState is the session's own durable state. The leading fields are
// the request fingerprint: a resume refuses to continue under a request
// that would produce a different run.
type sessionState struct {
	Dialect   simdb.Dialect
	TypeName  string
	Workload  string // the request's (pre-drift) workload name
	KnobNames []string
	Seed      int64
	Clones    int
	Budget    time.Duration
	Alpha     float64
	// Chaos plan fingerprint: resuming under a different fault plan would
	// replay a different run.
	ChaosSeed    int64
	ChaosProfile chaos.Profile
	// Evaluation-optimization fingerprint: wave dedup and warm-state
	// deltas change which stress tests run, so a resume must keep them.
	// Gob's zero defaults keep checkpoints from before these flags valid.
	DedupWaves bool
	WarmDeltas bool
	// Personalized-SLO fingerprint: resuming with a different fitness
	// target would stop the run at a different wave. Zero-default keeps
	// older checkpoints valid.
	StopAtFitness float64

	Clock       time.Duration
	Steps       int
	WaveCount   int
	BestFit     float64
	TargetHit   bool
	ModelTime   time.Duration
	DefaultPerf simdb.Perf
	Curve       Curve
	Samples     []Sample
	RNG         sim.RNGState

	CurWorkload *workload.Profile // active workload (drift may have switched it)
	// Legacy single-drift trio, kept so checkpoints from before the drift
	// queue still decode (see the resume conversion); new snapshots leave
	// them zero and write DriftQueue instead.
	DriftAt time.Duration
	DriftTo *workload.Profile
	Drifted bool

	// Ordered drift queue: the full schedule (fired and pending), how many
	// entries have fired, and the Best() time fence.
	DriftQueue []scheduledDrift
	DriftIdx   int
	BestSince  time.Duration

	// Online-safety fingerprint (the guard's defaulted options; nil when
	// the loop is off — resuming with different safety settings would run
	// a different session) and runtime state: the guard snapshot, what is
	// deployed on the user instance, the last-known-good fallback and the
	// loop's cadence/monitoring bookkeeping.
	Safety        *safety.Options
	SafetyState   *safety.State
	DefaultCfg    knob.Config
	DeployedCfg   knob.Config
	DeployedPoint []float64
	DeployedFit   float64
	DeployedPerf  simdb.Perf
	LastGoodCfg   knob.Config
	LastGoodPoint []float64
	LastGoodFit   float64
	LastGoodPerf  simdb.Perf
	SinceMonitor  int
	SinceDeploy   int
	MonitorLog    []MonitorPoint
	CanaryCount   int

	UserID   string
	CloneIDs []string
	TraceID  int

	// Chaos runtime state: the derived injector seed, its fault tally, the
	// per-actor fault keys/strikes (aligned with CloneIDs) and the
	// supervisor tally — everything a resume needs to replay the exact
	// same fault plan and keep reporting whole-session numbers.
	ChaosEngineSeed int64
	ChaosCounts     chaos.Counts
	ActorIDs        []int
	ActorSeqs       []int64
	ActorStrikes    []int
	Resil           resilienceStats
}

// Checkpoint section names.
const (
	sectionSession   = "session"
	sectionProvider  = "provider"
	sectionTelemetry = "telemetry"
	// SectionAlgo is the tuning algorithm's opaque state (written when the
	// tuner passes a snapshotter to CheckpointBarrier).
	SectionAlgo = "algo"
)

// WriteCheckpoint atomically writes the full session snapshot — session
// bookkeeping, the whole simulated fleet, telemetry, and the algorithm
// section — to CheckpointPath. It advances no virtual time.
func (s *Session) WriteCheckpoint(algo checkpoint.Snapshotter) error {
	path := s.CheckpointPath()
	if path == "" {
		return fmt.Errorf("tuner: checkpointing is not configured")
	}
	st := sessionState{
		Dialect:     s.Req.Dialect,
		TypeName:    s.Req.Type.Name,
		Workload:    s.origWorkload,
		KnobNames:   s.Req.KnobNames,
		Seed:        s.Req.Seed,
		Clones:      s.Req.Clones,
		Budget:      s.Req.Budget,
		Alpha:       s.Alpha,
		Clock:       s.Clock.Now(),
		Steps:       s.steps,
		WaveCount:   s.waveCount,
		BestFit:     s.bestFit,
		ModelTime:   s.modelTime,
		DefaultPerf: s.DefaultPerf,
		Curve:       s.curve,
		Samples:     s.Pool.All(),
		RNG:         s.RNG.State(),
		CurWorkload: s.Req.Workload,
		DriftQueue:  s.drifts,
		DriftIdx:    s.driftIdx,
		BestSince:   s.bestSince,
		UserID:      s.User.ID,
		Resil:       s.resil,
		DedupWaves:  s.dedupWaves(),
		WarmDeltas:  s.warmStateDeltas(),

		StopAtFitness: s.Req.StopAtFitness,
		TargetHit:     s.targetHit,
	}
	if plan := s.Req.Chaos; plan.Enabled() {
		st.ChaosSeed = plan.Seed
		st.ChaosProfile = plan.Profile // as requested, pre-normalization
		st.ChaosEngineSeed = s.chaos.Seed()
		st.ChaosCounts = s.chaos.Counts()
	}
	if s.guard != nil {
		opts := s.guard.Options()
		st.Safety = &opts
		gs := s.guard.Snapshot()
		st.SafetyState = &gs
		st.DefaultCfg = s.defaultCfg
		st.DeployedCfg = s.deployedCfg
		st.DeployedPoint = s.deployedPoint
		st.DeployedFit = s.deployedFit
		st.DeployedPerf = s.deployedPerf
		st.LastGoodCfg = s.lastGoodCfg
		st.LastGoodPoint = s.lastGoodPoint
		st.LastGoodFit = s.lastGoodFit
		st.LastGoodPerf = s.lastGoodPerf
		st.SinceMonitor = s.sinceMonitor
		st.SinceDeploy = s.sinceDeploy
		st.MonitorLog = s.monitorLog
		st.CanaryCount = s.canaryCount
	}
	for _, c := range s.Clones {
		st.CloneIDs = append(st.CloneIDs, c.ID)
	}
	for _, a := range s.actors {
		st.ActorIDs = append(st.ActorIDs, a.ID)
		st.ActorSeqs = append(st.ActorSeqs, a.seq)
		st.ActorStrikes = append(st.ActorStrikes, a.strikes)
	}
	if s.Trace != nil {
		st.TraceID = s.Trace.ID()
	}
	w := checkpoint.NewWriter()
	var sb bytes.Buffer
	if err := gob.NewEncoder(&sb).Encode(st); err != nil {
		return fmt.Errorf("tuner: encoding session state: %w", err)
	}
	if err := w.AddBytes(sectionSession, sb.Bytes()); err != nil {
		return err
	}
	if err := w.Add(sectionProvider, s.Provider); err != nil {
		return err
	}
	if s.Req.Recorder != nil {
		if err := w.Add(sectionTelemetry, s.Req.Recorder); err != nil {
			return err
		}
	}
	if algo != nil {
		if err := w.Add(SectionAlgo, algo); err != nil {
			return err
		}
	}
	if err := w.WriteFile(path); err != nil {
		return err
	}
	s.lastCkptWave = s.waveCount
	s.logf("checkpoint written", "path", path, "wave", s.waveCount)
	return nil
}

// PeekCheckpoint reads just the bookkeeping of a checkpoint file: the
// wave it was taken at and the virtual clock reading. The whole file is
// still integrity-checked, so a corrupt checkpoint fails here too.
func PeekCheckpoint(path string) (wave int, clock time.Duration, err error) {
	f, err := checkpoint.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	raw, err := f.Bytes(sectionSession)
	if err != nil {
		return 0, 0, fmt.Errorf("tuner: checkpoint has no session state: %w", err)
	}
	var st sessionState
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&st); err != nil {
		return 0, 0, fmt.Errorf("tuner: decoding session state: %w", err)
	}
	return st.WaveCount, st.Clock, nil
}

// ResumeSession rebuilds a Session from a checkpoint written by
// WriteCheckpoint. The request must describe the same run the checkpoint
// came from (same dialect, instance type, workload, knobs, seed, clones,
// budget and α) — logger, recorder and checkpoint policy may differ. The
// returned File gives the caller access to the checkpoint's algorithm
// section. On any error nothing observable is mutated.
func ResumeSession(ctx context.Context, req Request, path string) (*Session, *checkpoint.File, error) {
	if err := req.withDefaults(); err != nil {
		return nil, nil, err
	}
	f, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	raw, err := f.Bytes(sectionSession)
	if err != nil {
		return nil, nil, fmt.Errorf("tuner: checkpoint has no session state: %w", err)
	}
	var st sessionState
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&st); err != nil {
		return nil, nil, fmt.Errorf("tuner: decoding session state: %w", err)
	}
	if err := checkFingerprint(&st, &req); err != nil {
		return nil, nil, err
	}

	costs := DefaultStepCosts()
	if req.Costs != nil {
		costs = *req.Costs
	}
	var cat *knob.Catalog
	if req.Dialect == simdb.Postgres {
		cat = knob.Postgres()
	} else {
		cat = knob.MySQL()
	}
	if err := req.Rules.Validate(cat); err != nil {
		return nil, nil, err
	}
	space, err := knob.NewSpace(cat, req.KnobNames, req.Rules)
	if err != nil {
		return nil, nil, err
	}

	s := &Session{
		Req:          req,
		Clock:        sim.NewClock(),
		Provider:     cloud.NewProvider(req.Clones+4, 0),
		Space:        space,
		Pool:         NewSharedPool(),
		Costs:        costs,
		Alpha:        st.Alpha,
		RNG:          sim.NewRNG(0),
		DefaultPerf:  st.DefaultPerf,
		steps:        st.Steps,
		waveCount:    st.WaveCount,
		lastCkptWave: st.WaveCount,
		curve:        st.Curve,
		bestFit:      st.BestFit,
		targetHit:    st.TargetHit,
		modelTime:    st.ModelTime,
		drifts:       st.DriftQueue,
		driftIdx:     st.DriftIdx,
		bestSince:    st.BestSince,
		origWorkload: st.Workload,
		ctx:          ctx,
	}
	// Checkpoints from before the drift queue carry the single-drift trio;
	// convert it so older snapshots resume with identical semantics.
	if len(s.drifts) == 0 && st.DriftTo != nil {
		s.drifts = []scheduledDrift{{At: st.DriftAt, To: st.DriftTo}}
		if st.Drifted {
			s.driftIdx = 1
			s.bestSince = st.DriftAt
		}
	}
	if st.CurWorkload != nil {
		s.Req.Workload = st.CurWorkload
	}
	if err := s.RNG.SetState(st.RNG); err != nil {
		return nil, nil, err
	}
	s.Clock.AdvanceTo(st.Clock)
	s.Pool.Add(st.Samples...)
	s.resil = st.Resil
	// Re-arm the fault plan before the recorder attaches and the fleet is
	// restored: the injector seed and tally come from the checkpoint, not
	// from a fresh RNG fork, so the fault stream continues exactly where
	// the snapshot left it.
	if req.Chaos.Enabled() {
		s.chaos = chaos.NewEngine(st.ChaosEngineSeed, req.Chaos.Profile)
		s.chaos.SetCounts(st.ChaosCounts)
		s.Provider.SetChaos(s.chaos)
		s.deadline = time.Duration(s.chaos.DeadlineFactor() * float64(nominalStep(costs)))
	}

	if req.Recorder != nil {
		if f.Has(sectionTelemetry) {
			if err := f.Restore(sectionTelemetry, req.Recorder); err != nil {
				return nil, nil, fmt.Errorf("tuner: restoring telemetry: %w", err)
			}
		}
		if st.TraceID > 0 {
			s.Trace = req.Recorder.AdoptSession(st.TraceID, s.Clock.Now)
			if s.Trace == nil {
				return nil, nil, fmt.Errorf("tuner: checkpoint trace session %d missing from recorder", st.TraceID)
			}
		} else {
			s.Trace = req.Recorder.Session(
				fmt.Sprintf("%s/%s", req.Dialect, s.Req.Workload.Name), s.Clock.Now)
		}
		s.tel = resolveSessionTel(req.Recorder, s.chaos != nil, req.Safety != nil)
		s.Provider.SetRecorder(req.Recorder)
	}
	if err := f.Restore(sectionProvider, s.Provider); err != nil {
		return nil, nil, fmt.Errorf("tuner: restoring fleet: %w", err)
	}
	user, ok := s.Provider.Instance(st.UserID)
	if !ok {
		return nil, nil, fmt.Errorf("tuner: user instance %s missing from checkpoint fleet", st.UserID)
	}
	s.User = user
	for i, id := range st.CloneIDs {
		c, ok := s.Provider.Instance(id)
		if !ok {
			return nil, nil, fmt.Errorf("tuner: clone %s missing from checkpoint fleet", id)
		}
		a := &Actor{ID: i, Clone: c}
		// Actor fault keys survive the resume (older checkpoints without
		// them fall back to positional IDs and zero counters).
		if i < len(st.ActorIDs) {
			a.ID = st.ActorIDs[i]
		}
		if i < len(st.ActorSeqs) {
			a.seq = st.ActorSeqs[i]
		}
		if i < len(st.ActorStrikes) {
			a.strikes = st.ActorStrikes[i]
		}
		s.Clones = append(s.Clones, c)
		s.actors = append(s.actors, a)
	}
	// The warm-delta flag is runtime engine configuration, deliberately
	// excluded from snapshots — re-apply it to the restored fleet.
	if s.warmStateDeltas() {
		applyWarmDeltas(s.User)
		applyWarmDeltas(s.Clones...)
	}
	// Re-arm the safety loop and lay the checkpointed state over the fresh
	// guard: trust region, baseline window, violation counters, blocked
	// keys, quarantine, deployed/last-known-good configs and the monitor
	// timeline all continue exactly where the snapshot left them.
	if req.Safety != nil {
		if err := s.armSafety(req.Safety); err != nil {
			return nil, nil, err
		}
		if st.SafetyState != nil {
			s.guard.Restore(*st.SafetyState)
		}
		if st.DefaultCfg != nil {
			s.defaultCfg = st.DefaultCfg
			s.defaultPoint = s.Space.Encode(st.DefaultCfg)
		}
		if st.DeployedCfg != nil {
			s.deployedCfg = st.DeployedCfg
			s.deployedPoint = st.DeployedPoint
			s.deployedFit = st.DeployedFit
			s.deployedPerf = st.DeployedPerf
		}
		if st.LastGoodCfg != nil {
			s.lastGoodCfg = st.LastGoodCfg
			s.lastGoodPoint = st.LastGoodPoint
			s.lastGoodFit = st.LastGoodFit
			s.lastGoodPerf = st.LastGoodPerf
		}
		s.sinceMonitor = st.SinceMonitor
		s.sinceDeploy = st.SinceDeploy
		s.monitorLog = st.MonitorLog
		s.canaryCount = st.CanaryCount
	}
	s.initStatus()
	s.publishStatus(false)
	s.logf("session resumed",
		"checkpoint", path,
		"wave", s.waveCount,
		"steps", s.steps,
		"pool", s.Pool.Len())
	return s, f, nil
}

// checkFingerprint verifies the resume request matches the checkpointed
// run; any divergence would silently produce a different tuning trajectory.
func checkFingerprint(st *sessionState, req *Request) error {
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("tuner: checkpoint fingerprint mismatch: request %s = %v, checkpoint has %v",
			field, got, want)
	}
	if req.Dialect != st.Dialect {
		return mismatch("dialect", req.Dialect, st.Dialect)
	}
	if req.Type.Name != st.TypeName {
		return mismatch("instance type", req.Type.Name, st.TypeName)
	}
	if req.Workload.Name != st.Workload {
		return mismatch("workload", req.Workload.Name, st.Workload)
	}
	if req.Seed != st.Seed {
		return mismatch("seed", req.Seed, st.Seed)
	}
	if req.Clones != st.Clones {
		return mismatch("clones", req.Clones, st.Clones)
	}
	if req.Budget != st.Budget {
		return mismatch("budget", req.Budget, st.Budget)
	}
	if a := req.Rules.EffectiveAlpha(); a != st.Alpha {
		return mismatch("alpha", a, st.Alpha)
	}
	if len(req.KnobNames) != len(st.KnobNames) {
		return mismatch("knob count", len(req.KnobNames), len(st.KnobNames))
	}
	for i, n := range req.KnobNames {
		if n != st.KnobNames[i] {
			return mismatch(fmt.Sprintf("knob %d", i), n, st.KnobNames[i])
		}
	}
	var planSeed int64
	var planProfile chaos.Profile
	if req.Chaos.Enabled() {
		planSeed = req.Chaos.Seed
		planProfile = req.Chaos.Profile
	}
	if planSeed != st.ChaosSeed {
		return mismatch("chaos seed", planSeed, st.ChaosSeed)
	}
	if planProfile != st.ChaosProfile {
		return mismatch("chaos profile", planProfile.Name, st.ChaosProfile.Name)
	}
	var dedup, warm bool
	if req.Eval != nil {
		dedup, warm = req.Eval.DedupWaves, req.Eval.WarmStateDeltas
	}
	if dedup != st.DedupWaves {
		return mismatch("wave dedup", dedup, st.DedupWaves)
	}
	if warm != st.WarmDeltas {
		return mismatch("warm-state deltas", warm, st.WarmDeltas)
	}
	if req.StopAtFitness != st.StopAtFitness {
		return mismatch("fitness target", req.StopAtFitness, st.StopAtFitness)
	}
	// Safety options change which waves, canaries and deploys run, so the
	// whole (defaulted) option set is part of the fingerprint.
	if (req.Safety != nil) != (st.Safety != nil) {
		return mismatch("safety loop", req.Safety != nil, st.Safety != nil)
	}
	if req.Safety != nil {
		if got := req.Safety.WithDefaults(); got != *st.Safety {
			return mismatch("safety options", got, *st.Safety)
		}
	}
	return nil
}

// VerifyScheduledDrifts checks a resumed session's drift queue against the
// schedule the caller would have programmed on a fresh run (facades call
// this with the request's regenerated drift events — the queue itself
// rides the checkpoint, so this is a fingerprint, not a reload).
func (s *Session) VerifyScheduledDrifts(events []workload.DriftEvent) error {
	sorted := append([]workload.DriftEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	if len(sorted) != len(s.drifts) {
		return fmt.Errorf("tuner: checkpoint has %d scheduled drift(s), request schedules %d",
			len(s.drifts), len(sorted))
	}
	for i, ev := range sorted {
		if ev.At != s.drifts[i].At || ev.Profile.Name != s.drifts[i].To.Name {
			return fmt.Errorf("tuner: scheduled drift %d mismatch: checkpoint %v→%s, request %v→%s",
				i, s.drifts[i].At, s.drifts[i].To.Name, ev.At, ev.Profile.Name)
		}
	}
	return nil
}
