package tuner

import (
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// tracedSession builds a session with an attached recorder.
func tracedSession(t *testing.T, rec *telemetry.Recorder, seed int64) *Session {
	t.Helper()
	s, err := NewSession(Request{
		Workload: workload.TPCC(),
		Budget:   6 * time.Hour,
		Clones:   2,
		Seed:     seed,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestTraceAccountsEveryAdvance is the budget-accounting invariant: every
// virtual-clock advance a session makes is mirrored by a step charge, so
// the trace's accounted total equals Elapsed() exactly — integer duration
// equality, not approximation.
func TestTraceAccountsEveryAdvance(t *testing.T) {
	rec := telemetry.New()
	s := tracedSession(t, rec, 3)
	if s.Trace == nil {
		t.Fatal("session with recorder has no trace")
	}
	for i := 0; i < 3; i++ {
		batch := [][]float64{s.Space.Random(s.RNG), s.Space.Random(s.RNG), s.Space.Random(s.RNG)}
		if _, err := s.EvaluateBatch(batch); err != nil {
			t.Fatal(err)
		}
		s.ChargeModelUpdate()
	}
	if got, want := s.Trace.Accounted(), s.Elapsed(); got != want {
		t.Fatalf("trace accounted %v, session elapsed %v — an advance is uncharged", got, want)
	}
	rep := rec.Report()
	if len(rep.Sessions) != 1 {
		t.Fatalf("report has %d sessions, want 1", len(rep.Sessions))
	}
	var sum float64
	for _, sec := range rep.Sessions[0].StepSeconds {
		sum += sec
	}
	if sum != s.Elapsed().Seconds() {
		t.Fatalf("report step seconds sum to %v, elapsed is %v", sum, s.Elapsed().Seconds())
	}
	for _, step := range []string{"clone_fleet", "warmup_stress", "stress_wave", "model_update"} {
		if rep.Sessions[0].StepSeconds[step] <= 0 {
			t.Fatalf("step %q missing from breakdown: %+v", step, rep.Sessions[0].StepSeconds)
		}
	}
}

// TestTelemetryDoesNotChangeResults runs identical sessions with and
// without a recorder: every result — clock, steps, samples, curve — must
// match exactly, because the recorder is passive.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	rec := telemetry.New()
	plain := tracedSession(t, nil, 9)
	traced := tracedSession(t, rec, 9)
	drive := func(s *Session) {
		for i := 0; i < 4; i++ {
			batch := [][]float64{s.Space.Random(s.RNG), s.Space.Random(s.RNG)}
			if _, err := s.EvaluateBatch(batch); err != nil {
				t.Fatal(err)
			}
			s.ChargeModelUpdate()
		}
	}
	drive(plain)
	drive(traced)
	if plain.Elapsed() != traced.Elapsed() {
		t.Fatalf("clock diverged: %v vs %v", plain.Elapsed(), traced.Elapsed())
	}
	if plain.Steps() != traced.Steps() {
		t.Fatalf("steps diverged: %d vs %d", plain.Steps(), traced.Steps())
	}
	pc, tc := plain.Curve(), traced.Curve()
	if len(pc) != len(tc) {
		t.Fatalf("curve length diverged: %d vs %d", len(pc), len(tc))
	}
	for i := range pc {
		if pc[i] != tc[i] {
			t.Fatalf("curve[%d] diverged: %+v vs %+v", i, pc[i], tc[i])
		}
	}
	ps, ts := plain.Pool.All(), traced.Pool.All()
	if len(ps) != len(ts) {
		t.Fatalf("pool size diverged: %d vs %d", len(ps), len(ts))
	}
	for i := range ps {
		if ps[i].Perf != ts[i].Perf || ps[i].Time != ts[i].Time {
			t.Fatalf("pool sample %d diverged", i)
		}
	}
}

// TestSessionFinishAttrs checks Close seals the trace with summary attrs
// and that the tuner counters reflect the work done.
func TestSessionFinishAttrs(t *testing.T) {
	rec := telemetry.New()
	s := tracedSession(t, rec, 4)
	if _, err := s.EvaluateBatch([][]float64{s.Space.Random(s.RNG)}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	rep := rec.Report()
	sr := rep.Sessions[0]
	if !sr.Finished {
		t.Fatal("Close did not finish the trace")
	}
	if sr.Attrs["steps"] != float64(s.Steps()) {
		t.Fatalf("finish attrs wrong: %+v (want steps=%d)", sr.Attrs, s.Steps())
	}
	if got := rec.Counter("tuner.stress_waves").Value(); got < 1 {
		t.Fatalf("stress_waves = %d, want >= 1", got)
	}
	if got := rec.Counter("cloud.clones_created").Value(); got != 2 {
		t.Fatalf("clones_created = %d, want 2", got)
	}
	if got := rec.Counter("simdb.stress_tests").Value(); got < 2 {
		t.Fatalf("simdb.stress_tests = %d, want >= 2 (default measure + wave)", got)
	}
}
