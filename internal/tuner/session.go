package tuner

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/safety"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// Request is a user's tuning request (§2.1 Workflow): an instance, a
// workload, personalized Rules, a time budget and a parallelism degree.
type Request struct {
	Dialect  simdb.Dialect
	Type     cloud.InstanceType
	Workload *workload.Profile
	// KnobNames are the knobs initialized for tuning (the DBA's 65-knob
	// selection by default).
	KnobNames []string
	Rules     *knob.Rules
	Budget    time.Duration
	// Clones is the number of cloned CDBs to stress-test in parallel
	// (HUNTER-N). Minimum 1.
	Clones int
	Seed   int64
	// StopAtFitness, when positive, ends the session early once the
	// best-so-far fitness (Eq. 1, relative to DefaultPerf) reaches this
	// target — the personalized-SLO stop: a tenant that only needs "20%
	// better than default" should not burn its whole budget chasing the
	// global optimum. The check runs at wave boundaries on virtual time
	// only, so it is fully deterministic; zero (the default) disables it.
	StopAtFitness float64
	// Costs overrides the Table 1 step costs (zero value uses defaults).
	Costs *StepCosts
	// Logger receives structured progress events (session setup, drift,
	// best-so-far improvements, final deployment). Nil disables logging.
	Logger *slog.Logger
	// Recorder receives spans, counters and gauges for this session. Nil
	// (the default) disables telemetry at zero cost; the recorder is
	// passive, so enabling it never changes tuning results.
	Recorder *telemetry.Recorder
	// Checkpoint enables durable snapshots of the whole session at stress
	// wave boundaries. Nil disables checkpointing at zero cost; like the
	// recorder, checkpointing is passive and never changes tuning results.
	Checkpoint *CheckpointPolicy
	// Chaos arms deterministic fault injection on the session's cloud (nil
	// or an all-zero profile disables it — the default). With chaos off
	// every byte of session output is unchanged.
	Chaos *chaos.Plan
	// Eval selects opt-in evaluation-cost optimizations (wave dedup,
	// warm-state deltas). Nil — the default — keeps them all off, with
	// session output byte-identical to the unoptimized path.
	Eval *EvalOptions
	// Status receives live session status updates (phase, wave, best
	// objective) for the introspection plane. Nil disables publishing at
	// zero cost; like the recorder, a sink is passive and never changes
	// tuning results.
	Status StatusSink
	// Safety arms the online safe-tuning loop: candidate configs are
	// deployed to the user's instance *during* the run, gated by canary
	// waves, trust-region steps and rolling-baseline guardrails, monitored
	// against SLOs, and rolled back on sustained regression (see
	// internal/safety). Nil — the default — keeps the session a pure batch
	// optimizer with byte-identical output to earlier versions.
	Safety *safety.Options
}

// EvalOptions selects the evaluation-cost optimizations of a session. The
// zero value keeps every optimization off.
type EvalOptions struct {
	// DedupWaves evaluates byte-identical configurations in a batch once
	// and fans the measured sample out to every duplicate position
	// (common once a GA population converges). One stress test, one pool
	// entry, one step; virtual time is charged for the waves actually run.
	DedupWaves bool
	// WarmStateDeltas lets a reconfiguration that moves only the pool
	// shape or LRU policy adjust each engine's warm buffer pool in place
	// (online resize / dynamic policy change) instead of rebuilding and
	// re-warming it.
	WarmStateDeltas bool
}

func (r *Request) withDefaults() error {
	if r.Workload == nil {
		return fmt.Errorf("tuner: request needs a workload")
	}
	if err := r.Workload.Validate(); err != nil {
		return err
	}
	if r.Type.Cores == 0 {
		r.Type, _ = cloud.TypeByName("F")
	}
	if len(r.KnobNames) == 0 {
		if r.Dialect == simdb.Postgres {
			r.KnobNames = knob.PostgresTuned65()
		} else {
			r.KnobNames = knob.MySQLTuned65()
		}
	}
	if r.Rules == nil {
		r.Rules = knob.NewRules()
	}
	if r.Budget <= 0 {
		r.Budget = 70 * time.Hour
	}
	if r.Clones < 1 {
		r.Clones = 1
	}
	return nil
}

// Session is one budgeted tuning run: a user instance, its clones, the
// shared pool, and all virtual-time accounting. Tuners drive it through
// Evaluate/EvaluateBatch and read the pool; it records the best-so-far
// curve every figure consumes.
type Session struct {
	Req      Request
	Clock    *sim.Clock
	Provider *cloud.Provider
	User     *cloud.Instance
	Clones   []*cloud.Instance
	Space    *knob.Space
	Pool     *SharedPool
	Costs    StepCosts

	// DefaultPerf is the measured performance of the default
	// configuration — the Eq. 1 baseline.
	DefaultPerf simdb.Perf

	Alpha float64
	RNG   *sim.RNG

	// Trace is the session's telemetry handle (nil when no recorder was
	// requested). Every Clock.Advance in this file is mirrored by a
	// Trace.Charge with the same duration, so the trace's accounted time
	// equals Elapsed() exactly.
	Trace *telemetry.SessionTrace
	tel   *sessionTel

	actors []*Actor

	steps     int
	curve     Curve
	bestFit   float64
	targetHit bool
	ctx       context.Context
	modelTime time.Duration // accumulated ModelUpdate charges (Table 1)

	// Scheduled drifts, ordered by firing time. driftIdx is the count
	// already fired; bestSince fences Best() to samples measured on the
	// current workload (it moves on every oracle drift or detection).
	drifts    []scheduledDrift
	driftIdx  int
	bestSince time.Duration

	// Online safety runtime (all nil/zero without Req.Safety): the guard
	// state machine, the user's default config, what is currently deployed
	// on the user instance, the last-known-good fallback, the loop's wave
	// cadence counters and the deployed-config monitoring timeline.
	guard         *safety.Guard
	defaultCfg    knob.Config
	defaultPoint  []float64
	deployedCfg   knob.Config
	deployedPoint []float64
	deployedFit   float64
	deployedPerf  simdb.Perf
	lastGoodCfg   knob.Config
	lastGoodPoint []float64
	lastGoodFit   float64
	lastGoodPerf  simdb.Perf
	sinceMonitor  int
	sinceDeploy   int
	monitorLog    []MonitorPoint
	canaryCount   int

	// Checkpoint bookkeeping: total stress waves, the wave the last
	// snapshot covered, and the request's pre-drift workload name (part of
	// the resume fingerprint — Req.Workload is replaced when drift fires).
	waveCount    int
	lastCkptWave int
	origWorkload string

	// Chaos runtime (all zero when no plan is armed): the fault injector,
	// the per-actor wave deadline, and the supervisor's resilience tally.
	chaos    *chaos.Engine
	deadline time.Duration
	resil    resilienceStats

	// Status plane (all zero when no sink is attached): the registry key,
	// the display name and the current algorithm phase.
	statusKey  string
	statusName string
	phase      string
}

// scheduledDrift is one pending workload switch in the session's ordered
// drift queue.
type scheduledDrift struct {
	At time.Duration
	To *workload.Profile
}

// sessionTel is the tuner's counter, gauge and histogram set, resolved
// once per session. backoffH stays nil (the disabled handle) unless a
// chaos plan is armed, matching the provider's convention that fault
// metrics only exist when faults can occur; the safety counters likewise
// only exist when the online safety loop is armed.
type sessionTel struct {
	waves    *telemetry.Counter
	samples  *telemetry.Counter
	evals    *telemetry.Counter
	best     *telemetry.Gauge
	waveH    *telemetry.Histogram // virtual duration of each stress wave
	stepH    *telemetry.Histogram // per-actor stress-step virtual costs
	backoffH *telemetry.Histogram // chaos retry/backoff delays (armed only)

	// Online safety counters (armed only).
	canaries  *telemetry.Counter
	deploys   *telemetry.Counter
	blocks    *telemetry.Counter
	rollbacks *telemetry.Counter
	sloViol   *telemetry.Counter
	drifts    *telemetry.Counter
}

// resolveSessionTel builds the handle set against a recorder. Kept
// separate from NewSession so checkpoint resume re-resolves the same set.
func resolveSessionTel(r *telemetry.Recorder, chaosArmed, safetyArmed bool) *sessionTel {
	t := &sessionTel{
		waves:   r.Counter("tuner.stress_waves"),
		samples: r.Counter("tuner.samples_pooled"),
		evals:   r.Counter("tuner.configs_evaluated"),
		best:    r.Gauge("tuner.best_fitness"),
		waveH:   r.Histogram("tuner.wave_seconds"),
		stepH:   r.Histogram("tuner.actor_step_seconds"),
	}
	if chaosArmed {
		t.backoffH = r.Histogram("chaos.backoff_seconds")
	}
	if safetyArmed {
		t.canaries = r.Counter("tuner.canary_waves")
		t.deploys = r.Counter("tuner.online_deploys")
		t.blocks = r.Counter("tuner.guardrail_blocks")
		t.rollbacks = r.Counter("tuner.rollbacks")
		t.sloViol = r.Counter("tuner.slo_violations")
		t.drifts = r.Counter("tuner.drifts_detected")
	}
	return t
}

// NewSession provisions the user instance and its clones (charging clone
// time), builds the rule-constrained search space, and measures the
// default configuration's performance.
func NewSession(req Request) (*Session, error) {
	return NewSessionContext(context.Background(), req)
}

// NewSessionContext is NewSession with cancellation support.
func NewSessionContext(ctx context.Context, req Request) (*Session, error) {
	if err := req.withDefaults(); err != nil {
		return nil, err
	}
	costs := DefaultStepCosts()
	if req.Costs != nil {
		costs = *req.Costs
	}
	s := &Session{
		Req:      req,
		Clock:    sim.NewClock(),
		Provider: cloud.NewProvider(req.Clones+4, req.Seed^0x5eed),
		Pool:     NewSharedPool(),
		Costs:    costs,
		Alpha:    req.Rules.EffectiveAlpha(),
		RNG:      sim.NewRNG(req.Seed),
		bestFit:  math.Inf(-1),
		ctx:      ctx,
	}
	s.origWorkload = req.Workload.Name
	// Arm fault injection before the recorder and the fleet: provisioning
	// below must already see the fault plan. With no plan this is a no-op
	// and consumes nothing from the session RNG.
	s.armChaos(req.Chaos)
	if req.Recorder != nil {
		s.Trace = req.Recorder.Session(
			fmt.Sprintf("%s/%s", req.Dialect, req.Workload.Name), s.Clock.Now)
		s.tel = resolveSessionTel(req.Recorder, s.chaos != nil, req.Safety != nil)
		// Attach the control plane before provisioning so the user
		// instance, its clones and their engines all report.
		s.Provider.SetRecorder(req.Recorder)
	}
	var cat *knob.Catalog
	if req.Dialect == simdb.Postgres {
		cat = knob.Postgres()
	} else {
		cat = knob.MySQL()
	}
	if err := req.Rules.Validate(cat); err != nil {
		return nil, err
	}
	space, err := knob.NewSpace(cat, req.KnobNames, req.Rules)
	if err != nil {
		return nil, err
	}
	s.Space = space

	user, err := s.createWithRetry(req.Type, req.Dialect)
	if err != nil {
		return nil, err
	}
	s.User = user
	for i := 0; i < req.Clones; i++ {
		c, err := s.cloneWithRetry(user)
		if err != nil {
			// Release the partial fleet: a failed session must not leave
			// instances active on the provider.
			s.releaseFleet()
			return nil, fmt.Errorf("tuner: cloning CDB %d: %w", i, err)
		}
		s.Clones = append(s.Clones, c)
		s.actors = append(s.actors, &Actor{ID: i, Clone: c})
	}
	// Clones are created in parallel: one clone-time charge.
	s.charge("clone_fleet", cloud.CloneTime)
	if s.warmStateDeltas() {
		applyWarmDeltas(s.User)
		applyWarmDeltas(s.Clones...)
	}

	// Measure the default configuration once on a clone; this also warms
	// the clone's buffer pool.
	perf, _, took, err := s.Clones[0].StressTest(req.Workload, costs.WorkloadExecution)
	if err != nil {
		s.releaseFleet()
		return nil, fmt.Errorf("tuner: default stress test: %w", err)
	}
	s.charge("warmup_stress", took)
	s.DefaultPerf = perf
	if err := s.armSafety(req.Safety); err != nil {
		s.releaseFleet()
		return nil, err
	}
	s.initStatus()
	s.publishStatus(false)
	s.logf("session ready",
		"workload", req.Workload.Name,
		"dialect", req.Dialect.String(),
		"instance", req.Type.Name,
		"clones", req.Clones,
		"budget_h", req.Budget.Hours(),
		"knobs", s.Space.Dim(),
		"default_tps", perf.ThroughputTPS)
	return s, nil
}

// charge advances the virtual clock and mirrors the advance into the
// session trace as a step span. It is the only way session code moves the
// clock, which is what makes the trace's budget accounting exact.
func (s *Session) charge(step string, d time.Duration) {
	s.Clock.Advance(d)
	s.Trace.Charge(step, d)
}

// logf emits a structured progress event when a logger is configured.
func (s *Session) logf(msg string, args ...any) {
	if s.Req.Logger == nil {
		return
	}
	s.Req.Logger.Info(msg, append([]any{"t_h", s.Clock.Hours()}, args...)...)
}

// Close releases every provisioned instance and seals the session trace.
func (s *Session) Close() {
	s.publishStatus(true)      // final status while the fleet size is still real
	hours := s.InstanceHours() // before the fleet is released
	s.releaseFleet()
	if s.Trace != nil {
		best := s.bestFit
		if math.IsInf(best, 0) || math.IsNaN(best) {
			best = 0
		}
		s.Trace.Finish(
			telemetry.A("steps", float64(s.steps)),
			telemetry.A("samples", float64(s.Pool.Len())),
			telemetry.A("best_fitness", best),
			telemetry.A("instance_hours", hours),
		)
	}
}

// Elapsed returns the virtual time consumed so far.
func (s *Session) Elapsed() time.Duration { return s.Clock.Now() }

// TargetReached reports whether the session stopped because the
// StopAtFitness target was met (as opposed to spending its whole budget).
func (s *Session) TargetReached() bool { return s.targetHit }

// Exhausted reports whether the time budget is spent, the personalized
// fitness target has been reached, or the context is cancelled.
func (s *Session) Exhausted() bool {
	select {
	case <-s.ctx.Done():
		return true
	default:
	}
	return s.targetHit || s.Clock.Now() >= s.Req.Budget
}

// Remaining returns the unused budget.
func (s *Session) Remaining() time.Duration {
	r := s.Req.Budget - s.Clock.Now()
	if r < 0 {
		return 0
	}
	return r
}

// Steps returns the number of stress-tested configurations.
func (s *Session) Steps() int { return s.steps }

// InstanceHours returns the cost of the session so far in instance-hours:
// every cloned CDB plus the user's instance, for the elapsed virtual time
// (the cost axis of Figure 11).
func (s *Session) InstanceHours() float64 {
	return float64(len(s.Clones)+1) * s.Elapsed().Hours()
}

// Curve returns the recorded best-so-far trajectory.
func (s *Session) Curve() Curve { return append(Curve(nil), s.curve...) }

// Fitness evaluates Eq. 1 for a performance against this session's
// default baseline, α, and latency-percentile objective.
func (s *Session) Fitness(p simdb.Perf) float64 {
	return p.FitnessTail(s.DefaultPerf, s.Alpha, s.Req.Rules.Tail99)
}

// ChargeModelUpdate advances the clock by the Table 1 model-update cost;
// tuners call it after each learning step.
func (s *Session) ChargeModelUpdate() {
	s.charge("model_update", s.Costs.ModelUpdate)
	s.modelTime += s.Costs.ModelUpdate
}

// ModelUpdateTime returns the cumulative model-update charge.
func (s *Session) ModelUpdateTime() time.Duration { return s.modelTime }

// Evaluate stress-tests a single normalized point (on clone 0). If an
// injected fault swallows the sample (degraded wave with no survivors) it
// returns ErrSampleLost rather than a sample.
func (s *Session) Evaluate(point []float64) (Sample, error) {
	out, err := s.EvaluateBatch([][]float64{point})
	if err != nil {
		return Sample{}, err
	}
	if len(out) == 0 {
		return Sample{}, ErrSampleLost
	}
	return out[0], nil
}

// EvaluateBatch stress-tests a batch of normalized points (in the
// session's full space). See EvaluateConfigs for semantics.
func (s *Session) EvaluateBatch(points [][]float64) ([]Sample, error) {
	cfgs := make([]knob.Config, len(points))
	for i, pt := range points {
		cfgs[i] = s.Space.Decode(pt)
	}
	return s.EvaluateConfigs(cfgs)
}

// EvaluateConfigs stress-tests a batch of configurations, distributing
// them across the cloned CDBs in waves. Virtual time advances by the sum
// over waves of the slowest instance in each wave — the parallelization
// scheme of §2.2. Samples are added to the Shared Pool and the best-so-far
// curve is extended. Sample points are encoded in the session's full
// space regardless of which space the caller planned in.
//
// It returns ErrBudgetExhausted once the budget is spent; samples measured
// before exhaustion are still returned. Under an armed chaos plan a wave
// that loses actors to injected faults completes with the surviving
// samples (the wave is marked partial); only total fleet loss returns
// ErrFleetLost. Real stress-test errors from every failing actor are
// aggregated with errors.Join and propagate after the wave is accounted.
//
// With EvalOptions.DedupWaves on, byte-identical configurations in the
// batch are stress-tested once and the sample is fanned out to every
// duplicate position; see EvalOptions.
func (s *Session) EvaluateConfigs(cfgs []knob.Config) ([]Sample, error) {
	if !s.dedupWaves() || len(cfgs) < 2 {
		return s.evaluateConfigs(cfgs)
	}
	// Identify byte-identical configurations (by canonical key) in
	// first-occurrence order, so the unique batch is a stable subsequence
	// of the caller's batch.
	uniq := make([]knob.Config, 0, len(cfgs))
	owner := make([]int, len(cfgs)) // original position → unique position
	byKey := make(map[string]int, len(cfgs))
	for i, c := range cfgs {
		k := c.Key()
		j, ok := byKey[k]
		if !ok {
			j = len(uniq)
			byKey[k] = j
			uniq = append(uniq, c)
		}
		owner[i] = j
	}
	if len(uniq) == len(cfgs) {
		return s.evaluateConfigs(cfgs)
	}
	if s.Trace != nil {
		s.Trace.Event("wave_dedup",
			telemetry.A("configs", float64(len(cfgs))),
			telemetry.A("unique", float64(len(uniq))))
	}
	samples, err := s.evaluateConfigs(uniq)
	// Fan each measured unique sample out to every original position
	// holding that configuration. Duplicates share the unique run's
	// Step/Perf/State/Point — one stress test, one pool entry, one step —
	// and carry their own batch Index; a unique sample lost to a fault
	// loses its duplicates too.
	byUnique := make(map[int]Sample, len(samples))
	for _, smp := range samples {
		byUnique[smp.Index] = smp
	}
	out := make([]Sample, 0, len(cfgs))
	for i := range cfgs {
		smp, ok := byUnique[owner[i]]
		if !ok {
			continue
		}
		smp.Index = i
		out = append(out, smp)
	}
	return out, err
}

// dedupWaves reports whether wave dedup is enabled for this session.
func (s *Session) dedupWaves() bool { return s.Req.Eval != nil && s.Req.Eval.DedupWaves }

// warmStateDeltas reports whether warm-state deltas are enabled.
func (s *Session) warmStateDeltas() bool { return s.Req.Eval != nil && s.Req.Eval.WarmStateDeltas }

// applyWarmDeltas switches the given instances' engines to warm-state
// delta evaluation. The engine flag is runtime configuration excluded from
// snapshots, so fleet builders call this on creation, replacement and
// restore alike.
func applyWarmDeltas(insts ...*cloud.Instance) {
	for _, in := range insts {
		if in != nil {
			in.Engine().SetWarmDeltas(true)
		}
	}
}

// evaluateConfigs is the wave loop behind EvaluateConfigs.
func (s *Session) evaluateConfigs(cfgs []knob.Config) ([]Sample, error) {
	out := make([]Sample, 0, len(cfgs))
	if len(s.actors) == 0 {
		return out, ErrFleetLost
	}
	for start := 0; start < len(cfgs); {
		if s.Exhausted() {
			return out, ErrBudgetExhausted
		}
		// The fleet can shrink between waves (quarantine, failed
		// replacement), so the wave width is re-read every pass.
		n := len(s.actors)
		if n == 0 {
			return out, ErrFleetLost
		}
		s.maybeDrift()
		end := start + n
		if end > len(cfgs) {
			end = len(cfgs)
		}
		wave := cfgs[start:end]
		// The Actors stress-test the wave concurrently; results come back
		// in actor order so bookkeeping stays deterministic.
		results := runWave(s.actors[:len(wave)], wave, s.Req.Workload, s.Costs, s.chaos)
		// An erroring actor still occupied its instance until the error, so
		// the wave is charged by the slowest actor — erroring or not — and
		// the finished actors' samples are recorded before any error
		// propagates. A hung or pathologically slow actor is abandoned at
		// the per-actor deadline: the wave never waits past it, and the
		// abandoned step's sample is lost.
		waveMax := time.Duration(0)
		var errs []error
		recorded, lost := 0, 0
		for k := range results {
			res := &results[k]
			if s.deadline > 0 && res.took > s.deadline {
				res.took = s.deadline
				res.timedOut = true
			}
			if res.took > waveMax {
				waveMax = res.took
			}
			s.resil.Retries += int64(res.retries)
			s.resil.BackoffTime += res.backoff
			switch {
			case res.timedOut:
				s.resil.Timeouts++
				lost++
			case res.crashed || res.infra:
				lost++
			case res.execErr != nil:
				errs = append(errs, fmt.Errorf("tuner: actor %d (config %d): %w",
					s.actors[k].ID, start+k, res.execErr))
			default:
				s.steps++
				state := metrics.Vector{}
				if res.state != nil {
					state = res.state
				}
				out = append(out, Sample{
					State: state,
					Knobs: wave[k],
					Point: s.Space.Encode(wave[k]),
					Perf:  res.perf,
					Step:  s.steps,
					Index: start + k,
				})
				recorded++
			}
		}
		s.resil.SamplesLost += int64(lost)
		s.Clock.Advance(waveMax)
		s.waveCount++
		if s.Trace != nil { // guard keeps the attr slice off the disabled path
			s.Trace.Charge("stress_wave", waveMax,
				telemetry.A("configs", float64(len(wave))),
				telemetry.A("recorded", float64(recorded)))
			s.tel.waves.Add(1)
			s.tel.evals.Add(int64(len(wave)))
			s.tel.samples.Add(int64(recorded))
			s.tel.waveH.Observe(waveMax)
			// Per-actor fault/error events and step-cost observations,
			// post-join in actor order so the trace is deterministic; the
			// attr is the failing config index. (Histograms are additionally
			// order-independent, so observing here is belt and braces.)
			for k := range results {
				res := &results[k]
				s.tel.stepH.Observe(res.took)
				if res.backoff > 0 {
					s.tel.backoffH.Observe(res.backoff)
				}
				switch {
				case res.timedOut:
					s.Trace.Event("actor_timeout", telemetry.A("config", float64(start+k)))
				case res.crashed:
					s.Trace.Event("actor_crash", telemetry.A("config", float64(start+k)))
				case res.infra:
					s.Trace.Event("actor_transient", telemetry.A("config", float64(start+k)))
				case res.execErr != nil:
					s.Trace.Event("actor_error", telemetry.A("config", float64(start+k)))
				}
			}
			if lost > 0 {
				s.Trace.Event("wave_partial",
					telemetry.A("configs", float64(len(wave))),
					telemetry.A("recorded", float64(recorded)),
					telemetry.A("lost", float64(lost)))
			}
		}
		// Stamp completion time and record after the wave finishes.
		now := s.Clock.Now()
		for i := len(out) - recorded; i < len(out); i++ {
			out[i].Time = now
			s.Pool.Add(out[i])
			if f := s.Fitness(out[i].Perf); f > s.bestFit && !out[i].Perf.Failed {
				s.bestFit = f
				s.curve = append(s.curve, CurvePoint{Time: now, Perf: out[i].Perf, Step: out[i].Step})
				if s.Trace != nil {
					s.tel.best.Set(f)
					s.Trace.Event("best_improved",
						telemetry.A("fitness", f),
						telemetry.A("step", float64(out[i].Step)))
				}
				s.logf("best improved",
					"step", out[i].Step,
					"fitness", f,
					"tps", out[i].Perf.ThroughputTPS,
					"p95_ms", out[i].Perf.P95LatencyMs)
			}
		}
		// Personalized-SLO stop: checked once per wave boundary, after the
		// whole wave is accounted, so the stopping point depends only on
		// virtual time and measured fitness — never on worker interleaving.
		if t := s.Req.StopAtFitness; t > 0 && !s.targetHit && s.bestFit >= t {
			s.targetHit = true
			if s.Trace != nil {
				s.Trace.Event("target_reached",
					telemetry.A("fitness", s.bestFit),
					telemetry.A("target", t))
			}
			s.logf("fitness target reached", "fitness", s.bestFit, "target", t)
		}
		if lost > 0 {
			s.resil.PartialWaves++
			s.logf("wave degraded",
				"configs", len(wave), "recorded", recorded, "lost", lost)
		}
		if s.chaos != nil {
			s.repairFleet(results)
		}
		if s.guard != nil {
			s.safetyStep()
		}
		s.publishStatus(false)
		if len(errs) > 0 {
			return out, errors.Join(errs...)
		}
		start = end
	}
	return out, nil
}

// ScheduleDrift enqueues a workload switch to p once the virtual clock
// passes at — the workload-drift scenario of Figure 10, generalized to an
// ordered queue so a whole drift *stream* (see workload.GenerateStream)
// can be scheduled up front. Drifts may be scheduled in any order and
// fire in At order; scheduling the same instant twice is allowed (later
// entries win, firing in insertion order within the wave that passes
// them). Scheduling at or before the current clock fires on the next
// wave boundary.
//
// When a drift fires on a session without the online safety loop, the
// default baseline is re-measured on the new workload and the
// best-so-far tracking restarts, while every tuner keeps its learned
// state (replay buffers, surrogate models, populations) — the oracle
// drift notification. With the safety loop armed the switch is silent:
// the running system only learns of the drift when the guard's
// divergence detector confirms it from monitoring probes.
func (s *Session) ScheduleDrift(at time.Duration, p *workload.Profile) error {
	if at < 0 {
		return fmt.Errorf("tuner: drift time %v is negative", at)
	}
	if p == nil {
		return fmt.Errorf("tuner: drift needs a profile")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	// Stable insertion into the pending tail (indices >= driftIdx): already
	// fired entries are history and never reordered.
	i := len(s.drifts)
	for i > s.driftIdx && s.drifts[i-1].At > at {
		i--
	}
	s.drifts = append(s.drifts, scheduledDrift{})
	copy(s.drifts[i+1:], s.drifts[i:])
	s.drifts[i] = scheduledDrift{At: at, To: p}
	return nil
}

// Drifted reports whether at least one scheduled drift has fired.
func (s *Session) Drifted() bool { return s.driftIdx > 0 }

// ScheduledDrifts returns the firing times and profile names of the whole
// drift queue (fired and pending), for resume verification.
func (s *Session) ScheduledDrifts() []workload.DriftEvent {
	out := make([]workload.DriftEvent, len(s.drifts))
	for i, d := range s.drifts {
		out[i] = workload.DriftEvent{At: d.At, Profile: d.To}
	}
	return out
}

// maybeDrift fires every scheduled drift the clock has passed, in order.
func (s *Session) maybeDrift() {
	fired := false
	for s.driftIdx < len(s.drifts) && s.Clock.Now() >= s.drifts[s.driftIdx].At {
		d := s.drifts[s.driftIdx]
		s.driftIdx++
		fired = true
		s.logf("workload drift", "to", d.To.Name)
		s.Trace.Event("workload_drift")
		s.Req.Workload = d.To
	}
	if !fired {
		return
	}
	if s.guard != nil {
		// Silent drift: the serving system is not told. The guard's
		// monitoring probes now run against the new workload; its divergence
		// detector is what re-baselines the session (see onDriftDetected).
		return
	}
	// Oracle notification: re-measure the default baseline on the new
	// workload and restart best-so-far tracking. One re-stress per batch of
	// due drifts — only the latest workload is ever measured.
	if perf, _, took, err := s.Clones[0].StressTest(s.Req.Workload, s.Costs.WorkloadExecution); err == nil {
		s.charge("drift_restress", took)
		s.DefaultPerf = perf
	}
	s.bestFit = math.Inf(-1)
	s.bestSince = s.drifts[s.driftIdx-1].At
	s.publishStatus(false)
	// The pre-drift samples stay in the pool (they are the history the
	// learning methods exploit) but the curve restarts from the drift.
}

// Best returns the best pooled sample so far under the session's
// objective. After a drift (oracle-fired or detected) only samples
// measured on the current workload count: earlier performances were
// measured on the old one.
func (s *Session) Best() (Sample, bool) {
	best, found := Sample{}, false
	bestF := math.Inf(-1)
	for _, smp := range s.Pool.All() {
		if smp.Time < s.bestSince {
			continue
		}
		if f := s.Fitness(smp.Perf); f > bestF {
			best, bestF, found = smp, f, true
		}
	}
	return best, found
}

// DeployBest deploys the best verified configuration onto the user's
// instance — done once, after tuning, per the availability design (§2.2).
func (s *Session) DeployBest() (Sample, error) {
	best, ok := s.Best()
	if !ok {
		return Sample{}, fmt.Errorf("tuner: no samples to deploy")
	}
	if v := s.Req.Rules.Violations(s.Space.Catalog(), best.Knobs); len(v) > 0 {
		return Sample{}, fmt.Errorf("tuner: best configuration violates rules: %v", v)
	}
	if _, err := s.deployToUser(best.Knobs); err != nil {
		return Sample{}, fmt.Errorf("tuner: deploying to user instance: %w", err)
	}
	if s.Trace != nil {
		s.Trace.Event("deploy_user", telemetry.A("fitness", s.Fitness(best.Perf)))
	}
	s.logf("deployed best configuration to user instance",
		"fitness", s.Fitness(best.Perf), "tps", best.Perf.ThroughputTPS)
	return best, nil
}

// deployToUser pushes a configuration onto the user's instance, retrying
// transient control-plane faults like any other step — one flaky API call
// must not discard a whole tuning run. It returns the deploy's virtual
// duration *uncharged*: the batch DeployBest path ignores it (the final
// deploy happens after the budget), while the online safety loop charges
// it against the budget since the instance is live mid-run.
func (s *Session) deployToUser(cfg knob.Config) (time.Duration, error) {
	var (
		derr error
		took time.Duration
	)
	for attempt := 0; ; attempt++ {
		_, took, derr = s.User.Deploy(cfg, s.Costs.KnobsDeployment)
		if derr == nil || !cloud.IsTransient(derr) || attempt >= s.chaos.MaxRetries() {
			break
		}
		b := s.chaos.Backoff(attempt)
		s.charge("deploy_backoff", b)
		s.resil.Retries++
		s.resil.BackoffTime += b
		if s.tel != nil {
			s.tel.backoffH.Observe(b)
		}
	}
	return took, derr
}

// Tuner is a tuning method: it drives a session until the budget is
// exhausted (returning ErrBudgetExhausted from an evaluation is the normal
// way to stop).
type Tuner interface {
	Name() string
	Tune(s *Session) error
}
