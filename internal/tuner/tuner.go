// Package tuner provides the machinery every tuning method runs on: the
// (S, A, P) sample type, the Shared Pool, the Table 1 step-cost model, and
// the Session — a budgeted tuning run against cloned CDB instances under a
// virtual clock, with parallel stress-testing and best-so-far curve
// recording for the paper's figures.
package tuner

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/simdb"
)

// Sample is one stress-test outcome: state metrics S, configuration A and
// performance P (§2.1).
type Sample struct {
	State metrics.Vector
	Knobs knob.Config
	// Point is A encoded in the session space's normalized coordinates.
	Point []float64
	Perf  simdb.Perf
	Step  int
	Time  time.Duration // virtual time when the sample completed
	// Index is the sample's position in the batch the caller passed to
	// EvaluateConfigs/EvaluateBatch. With a healthy fleet it equals the
	// sample's position in the returned slice; when a degraded wave drops
	// samples it is what lets callers re-associate survivors with the
	// inputs (actions, genes) they came from.
	Index int
}

// SharedPool holds the samples every module reads and writes (Figure 2).
type SharedPool struct {
	mu      sync.RWMutex
	samples []Sample
}

// NewSharedPool returns an empty pool.
func NewSharedPool() *SharedPool { return &SharedPool{} }

// Add appends samples to the pool.
func (p *SharedPool) Add(s ...Sample) {
	p.mu.Lock()
	p.samples = append(p.samples, s...)
	p.mu.Unlock()
}

// Len returns the number of pooled samples.
func (p *SharedPool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.samples)
}

// All returns a snapshot of the pool.
func (p *SharedPool) All() []Sample {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Sample, len(p.samples))
	copy(out, p.samples)
	return out
}

// Best returns the pooled sample with the highest Eq. 1 fitness against
// the default performance def.
func (p *SharedPool) Best(def simdb.Perf, alpha float64) (Sample, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	best, found := Sample{}, false
	bestF := math.Inf(-1)
	for _, s := range p.samples {
		if f := s.Perf.Fitness(def, alpha); f > bestF {
			best, bestF, found = s, f, true
		}
	}
	return best, found
}

// SortedByFitness returns samples in descending fitness order.
func (p *SharedPool) SortedByFitness(def simdb.Perf, alpha float64) []Sample {
	out := p.All()
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Perf.Fitness(def, alpha) > out[j].Perf.Fitness(def, alpha)
	})
	return out
}

// StepCosts is the Table 1 time breakdown of one tuning step.
type StepCosts struct {
	WorkloadExecution   time.Duration
	MetricsCollection   time.Duration
	ModelUpdate         time.Duration
	KnobsDeployment     time.Duration
	KnobsRecommendation time.Duration
}

// DefaultStepCosts returns the measured values of Table 1.
func DefaultStepCosts() StepCosts {
	return StepCosts{
		WorkloadExecution:   time.Duration(142.7 * float64(time.Second)),
		MetricsCollection:   200 * time.Microsecond,
		ModelUpdate:         71 * time.Millisecond,
		KnobsDeployment:     time.Duration(21.3 * float64(time.Second)),
		KnobsRecommendation: time.Duration(2.57 * float64(time.Millisecond)),
	}
}

// StepTotal is the full cost of one sequential tuning step.
func (c StepCosts) StepTotal() time.Duration {
	return c.WorkloadExecution + c.MetricsCollection + c.ModelUpdate +
		c.KnobsDeployment + c.KnobsRecommendation
}

// CurvePoint is one point of a best-so-far performance curve.
type CurvePoint struct {
	Time time.Duration
	Perf simdb.Perf // best performance observed up to Time
	Step int
}

// Curve is a best-so-far trajectory (the lines of Figures 4, 9, 10, 13).
type Curve []CurvePoint

// At returns the best performance at or before t (zero Perf if none).
func (c Curve) At(t time.Duration) (simdb.Perf, bool) {
	var out simdb.Perf
	found := false
	for _, p := range c {
		if p.Time > t {
			break
		}
		out, found = p.Perf, true
	}
	return out, found
}

// Final returns the last point of the curve.
func (c Curve) Final() (CurvePoint, bool) {
	if len(c) == 0 {
		return CurvePoint{}, false
	}
	return c[len(c)-1], true
}

// RecommendationTime returns the earliest virtual time at which the curve
// reached frac (e.g. 0.98) of its final best fitness — the paper's
// "recommendation time". The second return is the step index.
func (c Curve) RecommendationTime(def simdb.Perf, alpha, frac float64) (time.Duration, int) {
	if len(c) == 0 {
		return 0, 0
	}
	final := c[len(c)-1].Perf.Fitness(def, alpha)
	if final <= 0 {
		last := c[len(c)-1]
		return last.Time, last.Step
	}
	for _, p := range c {
		if p.Perf.Fitness(def, alpha) >= frac*final {
			return p.Time, p.Step
		}
	}
	last := c[len(c)-1]
	return last.Time, last.Step
}

// TimeToFitness returns the earliest virtual time at which the curve
// reached the target fitness, for cross-method comparisons ("HUNTER
// reaches similar optimal throughput N× faster", §6.1). The bool reports
// whether the target was ever reached.
func (c Curve) TimeToFitness(def simdb.Perf, alpha, target float64) (time.Duration, bool) {
	for _, p := range c {
		if p.Perf.Fitness(def, alpha) >= target {
			return p.Time, true
		}
	}
	return 0, false
}

// ErrBudgetExhausted signals that the session's time budget is spent.
var ErrBudgetExhausted = fmt.Errorf("tuner: time budget exhausted")

// ErrFleetLost signals that every cloned CDB has crashed or been
// quarantined: the session cannot stress-test anything anymore, and the
// caller should fall back to the user instance's baseline configuration.
var ErrFleetLost = fmt.Errorf("tuner: entire clone fleet lost")

// ErrSampleLost signals that a single-point evaluation lost its sample to
// an infrastructure fault (the wave completed degraded, with nothing to
// return) rather than to a hard error.
var ErrSampleLost = fmt.Errorf("tuner: sample lost to an infrastructure fault")
