package tuner

import (
	"fmt"
	"math"

	"github.com/hunter-cdb/hunter/internal/sim"
)

// LatinHypercube draws n points in [0,1]^dim with one sample per stratum
// in every dimension — the initial sampling of BestConfig and OtterTune.
func LatinHypercube(n, dim int, rng *sim.RNG) [][]float64 {
	if n <= 0 || dim <= 0 {
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
	}
	for d := 0; d < dim; d++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			out[i][d] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return out
}

// StateNormalizer standardizes metric vectors online with running
// mean/variance (Welford), so DRL tuners see comparably scaled states from
// the first step.
type StateNormalizer struct {
	n    int
	mean []float64
	m2   []float64
}

// NewStateNormalizer creates a normalizer for dim-dimensional states.
func NewStateNormalizer(dim int) *StateNormalizer {
	return &StateNormalizer{mean: make([]float64, dim), m2: make([]float64, dim)}
}

// Observe folds a raw state into the running statistics.
func (s *StateNormalizer) Observe(x []float64) {
	s.n++
	for i := range s.mean {
		d := x[i] - s.mean[i]
		s.mean[i] += d / float64(s.n)
		s.m2[i] += d * (x[i] - s.mean[i])
	}
}

// Normalize returns the standardized copy of x under current statistics.
func (s *StateNormalizer) Normalize(x []float64) []float64 {
	out := make([]float64, len(s.mean))
	for i := range out {
		sd := 1.0
		if s.n > 1 {
			sd = math.Sqrt(s.m2[i] / float64(s.n-1))
			if sd < 1e-9 {
				sd = 1
			}
		}
		v := x[i]
		if i < len(x) {
			v = (v - s.mean[i]) / sd
		}
		out[i] = sim.Clamp(v, -5, 5)
	}
	return out
}

// NormalizerState is a StateNormalizer's durable state (checkpointing).
type NormalizerState struct {
	N    int
	Mean []float64
	M2   []float64
}

// State exports the running statistics.
func (s *StateNormalizer) State() NormalizerState {
	return NormalizerState{
		N:    s.n,
		Mean: append([]float64(nil), s.mean...),
		M2:   append([]float64(nil), s.m2...),
	}
}

// RestoreStateNormalizer rebuilds a normalizer from exported statistics.
func RestoreStateNormalizer(st NormalizerState) (*StateNormalizer, error) {
	if len(st.Mean) != len(st.M2) {
		return nil, fmt.Errorf("tuner: normalizer state has %d means, %d variances", len(st.Mean), len(st.M2))
	}
	return &StateNormalizer{
		n:    st.N,
		mean: append([]float64(nil), st.Mean...),
		m2:   append([]float64(nil), st.M2...),
	}, nil
}

// PerturbPoint returns p with Gaussian noise of width sigma, clipped to
// the unit cube.
func PerturbPoint(p []float64, sigma float64, rng *sim.RNG) []float64 {
	out := make([]float64, len(p))
	for i := range p {
		out[i] = sim.Clamp(p[i]+rng.Gaussian(0, sigma), 0, 1)
	}
	return out
}
