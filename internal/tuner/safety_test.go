package tuner

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/parallel"
	"github.com/hunter-cdb/hunter/internal/safety"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// safetyRequest is the fixed scenario the online-safety tests run under:
// a guarded TPC-C session whose diurnal drift stream collapses demand into
// a deep overnight trough — the same shape the safety experiment uses,
// shrunk to test scale.
func safetyRequest(opts *safety.Options) Request {
	return Request{
		Workload: workload.TPCC(),
		Budget:   5 * time.Hour,
		Clones:   3,
		Seed:     21,
		Safety:   opts,
	}
}

func scheduleTestStream(t *testing.T, s *Session) []workload.DriftEvent {
	t.Helper()
	events, err := workload.GenerateStream(workload.TPCC(), workload.StreamSpec{
		Kind:      workload.StreamDiurnal,
		Period:    5 * time.Hour,
		Events:    4,
		Amplitude: 0.9,
		Seed:      21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := s.ScheduleDrift(ev.At, ev.Profile); err != nil {
			t.Fatal(err)
		}
	}
	return events
}

// safetyState is everything the determinism and resume-identity tests
// compare: the wave loop's position, the guard's full report, and the
// deployed-config bookkeeping.
type safetyState struct {
	Waves, Steps, Pool int
	Elapsed            time.Duration
	NextRNG            int64
	Report             SafetyReport
	Timeline           []MonitorPoint
	DeployedKey        string
	DriftIdx           int
	BestSince          time.Duration
	Workload           string
}

func captureSafety(s *Session) safetyState {
	return safetyState{
		Waves: s.WaveCount(), Steps: s.Steps(), Pool: s.Pool.Len(),
		Elapsed: s.Elapsed(), NextRNG: s.RNG.Int63(),
		Report:      *s.Safety(),
		Timeline:    s.DeployedTimeline(),
		DeployedKey: s.deployedCfg.Key(),
		DriftIdx:    s.driftIdx,
		BestSince:   s.bestSince,
		Workload:    s.Req.Workload.Name,
	}
}

// runToExhaustion drives three-config random waves until the budget runs
// out, returning how many waves ran.
func runToExhaustion(t *testing.T, s *Session) int {
	t.Helper()
	n := 0
	for {
		_, err := s.EvaluateBatch([][]float64{
			s.Space.Random(s.RNG), s.Space.Random(s.RNG), s.Space.Random(s.RNG),
		})
		if errors.Is(err, ErrBudgetExhausted) {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
}

// TestScheduleDriftQueue: drifts scheduled out of order queue in time
// order, fire in sequence, and late insertions land in the pending tail
// without disturbing already-fired history.
func TestScheduleDriftQueue(t *testing.T) {
	s := newTestSession(t, 1, 12*time.Hour)
	wo, ro, rw := workload.SysbenchWO(), workload.SysbenchRO(), workload.SysbenchRW()

	if err := s.ScheduleDrift(-time.Minute, wo); err == nil {
		t.Fatal("negative drift time should be rejected")
	}
	if err := s.ScheduleDrift(time.Hour, nil); err == nil {
		t.Fatal("nil drift workload should be rejected")
	}

	// Schedule out of order; the queue must come back sorted.
	if err := s.ScheduleDrift(4*time.Hour, rw); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleDrift(1*time.Hour, wo); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleDrift(2*time.Hour, ro); err != nil {
		t.Fatal(err)
	}
	got := s.ScheduledDrifts()
	if len(got) != 3 || got[0].Profile.Name != "sysbench-wo" ||
		got[1].Profile.Name != "sysbench-ro" || got[2].Profile.Name != "sysbench-rw" {
		t.Fatalf("queue not time-ordered: %+v", got)
	}

	// Fire the first drift, then insert another pending entry: history
	// stays, the insertion sorts into the tail.
	for !s.Drifted() {
		if _, err := s.Evaluate(s.Space.Random(s.RNG)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Req.Workload.Name != "sysbench-wo" {
		t.Fatalf("first drift switched to %s", s.Req.Workload.Name)
	}
	if err := s.ScheduleDrift(90*time.Minute, workload.TPCC()); err != nil {
		t.Fatal(err)
	}
	got = s.ScheduledDrifts()
	want := []string{"sysbench-wo", "tpcc", "sysbench-ro", "sysbench-rw"}
	if len(got) != len(want) {
		t.Fatalf("queue length %d, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Profile.Name != name {
			t.Fatalf("queue[%d] = %s, want %s (%+v)", i, got[i].Profile.Name, name, got)
		}
	}
}

// TestGuardedSessionWorkerDeterminism: a guarded drift-stream session is
// byte-identical in all observable state at any worker-pool size.
func TestGuardedSessionWorkerDeterminism(t *testing.T) {
	run := func(workers int) safetyState {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		s, err := NewSession(safetyRequest(&safety.Options{Guardrails: true}))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		scheduleTestStream(t, s)
		runToExhaustion(t, s)
		return captureSafety(s)
	}
	golden := run(1)
	if golden.Report.Deploys == 0 && golden.Report.Blocks == 0 {
		t.Fatal("guarded session neither deployed nor blocked — determinism check is vacuous")
	}
	if got := run(8); !reflect.DeepEqual(golden, got) {
		t.Fatalf("workers=8 diverged\ngolden: %+v\ngot:    %+v", golden, got)
	}
}

// TestSafetyCheckpointResumeIdentity: kill the session between the first
// guardrail block and the rollback, resume from the snapshot, and the
// finished run must be identical to the uninterrupted golden — at any
// worker count. This is the hard case: the guard is mid-state (blocked
// keys set, violations accumulating, trust radius shrunk) and the drift
// queue is partially fired.
func TestSafetyCheckpointResumeIdentity(t *testing.T) {
	opts := &safety.Options{Guardrails: true}

	// Golden leg (workers=1): run to exhaustion, remembering after which
	// wave the first guardrail block appeared and when the rollback hit.
	prev := parallel.SetWorkers(1)
	g, err := NewSession(safetyRequest(opts))
	if err != nil {
		t.Fatal(err)
	}
	scheduleTestStream(t, g)
	splitWave := 0
	wave := 0
	for {
		_, err := g.EvaluateBatch([][]float64{
			g.Space.Random(g.RNG), g.Space.Random(g.RNG), g.Space.Random(g.RNG),
		})
		if errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		wave++
		c := g.guard.Counts()
		if c.Blocks >= 1 && c.Rollbacks == 0 {
			splitWave = wave // latest wave still between block and rollback
		}
	}
	golden := captureSafety(g)
	g.Close()
	parallel.SetWorkers(prev)

	if golden.Report.Blocks == 0 || golden.Report.Rollbacks == 0 {
		t.Fatalf("scenario produced %d block(s) and %d rollback(s) — need both for the mid-rollback kill",
			golden.Report.Blocks, golden.Report.Rollbacks)
	}
	if splitWave == 0 {
		t.Fatal("no wave sits between the first guardrail block and the rollback")
	}

	for _, workers := range []int{1, 8} {
		prev := parallel.SetWorkers(workers)
		dir := t.TempDir()
		req := safetyRequest(opts)
		req.Checkpoint = &CheckpointPolicy{Dir: dir}
		s, err := NewSession(req)
		if err != nil {
			t.Fatal(err)
		}
		scheduleTestStream(t, s)
		for i := 0; i < splitWave; i++ {
			if _, err := s.EvaluateBatch([][]float64{
				s.Space.Random(s.RNG), s.Space.Random(s.RNG), s.Space.Random(s.RNG),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if c := s.guard.Counts(); c.Blocks < 1 || c.Rollbacks != 0 {
			t.Fatalf("workers=%d: kill point has %d block(s), %d rollback(s) — not between block and rollback",
				workers, c.Blocks, c.Rollbacks)
		}
		if err := s.WriteCheckpoint(nil); err != nil {
			t.Fatal(err)
		}
		path := s.CheckpointPath()
		s.Close()

		r, _, err := ResumeSession(context.Background(), req, path)
		if err != nil {
			t.Fatal(err)
		}
		runToExhaustion(t, r)
		got := captureSafety(r)
		r.Close()
		parallel.SetWorkers(prev)

		if !reflect.DeepEqual(golden, got) {
			t.Fatalf("workers=%d: resumed run diverged from golden\ngolden: %+v\ngot:    %+v",
				workers, golden, got)
		}
	}
}

// TestSafetyWithChaosFlaky: the online safety loop composes with fault
// injection — canary waves ride the retry/repair machinery, the session
// completes, and the run stays deterministic.
func TestSafetyWithChaosFlaky(t *testing.T) {
	run := func(workers int) safetyState {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		req := safetyRequest(&safety.Options{Guardrails: true})
		req.Chaos = &chaos.Plan{Seed: 7, Profile: chaos.Flaky()}
		s, err := NewSession(req)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		scheduleTestStream(t, s)
		runToExhaustion(t, s)
		if s.Resilience().Injected.Total() == 0 {
			t.Fatal("flaky profile injected nothing")
		}
		return captureSafety(s)
	}
	golden := run(1)
	if golden.Report.Canaries == 0 {
		t.Fatal("no canary waves ran under chaos — composition check is vacuous")
	}
	if got := run(8); !reflect.DeepEqual(golden, got) {
		t.Fatalf("workers=8 diverged under chaos\ngolden: %+v\ngot:    %+v", golden, got)
	}
}

// BenchmarkDriftStreamSession measures the full online-safety wave cycle:
// a three-config stress wave plus the guard's monitor/canary/deploy steps
// under a scheduled drift stream.
func BenchmarkDriftStreamSession(b *testing.B) {
	s, err := NewSession(Request{
		Workload: workload.TPCC(),
		Budget:   1 << 62,
		Clones:   3,
		Seed:     1,
		Safety:   &safety.Options{Guardrails: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	events, err := workload.GenerateStream(workload.TPCC(), workload.StreamSpec{
		Kind: workload.StreamDiurnal, Period: 1 << 40, Events: 6, Amplitude: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ev := range events {
		if err := s.ScheduleDrift(ev.At, ev.Profile); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EvaluateBatch([][]float64{
			s.Space.Random(s.RNG), s.Space.Random(s.RNG), s.Space.Random(s.RNG),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
