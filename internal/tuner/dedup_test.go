package tuner

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// dedupRequest builds the fixed request the wave-dedup tests run under;
// eval toggles the evaluation speedups.
func dedupRequest(eval *EvalOptions) Request {
	return Request{
		Workload: workload.TPCC(),
		Budget:   100 * time.Hour,
		Clones:   2,
		Seed:     1,
		Eval:     eval,
	}
}

func newDedupSession(t *testing.T, eval *EvalOptions) *Session {
	t.Helper()
	s, err := NewSession(dedupRequest(eval))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// A batch of byte-identical configurations must cost one stress test, one
// step and one pool entry; every duplicate position still gets a sample
// carrying its own batch index.
func TestDedupWavesIdenticalConfigs(t *testing.T) {
	s := newDedupSession(t, &EvalOptions{DedupWaves: true})
	pt := s.Space.DefaultPoint()
	cfgs := make([]knob.Config, 4)
	for i := range cfgs {
		cfgs[i] = s.Space.Decode(pt)
	}
	steps, pool := s.Steps(), s.Pool.Len()
	base := s.Elapsed()
	samples, err := s.EvaluateConfigs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	dedupTime := s.Elapsed() - base

	if len(samples) != 4 {
		t.Fatalf("got %d samples for 4 duplicate configs, want 4", len(samples))
	}
	for i, smp := range samples {
		if smp.Index != i {
			t.Errorf("sample %d has Index %d", i, smp.Index)
		}
		if smp.Step != samples[0].Step || smp.Perf != samples[0].Perf || smp.Time != samples[0].Time {
			t.Errorf("duplicate %d does not share the unique run's measurement", i)
		}
	}
	if got := s.Steps() - steps; got != 1 {
		t.Errorf("4 duplicates consumed %d steps, want 1", got)
	}
	if got := s.Pool.Len() - pool; got != 1 {
		t.Errorf("4 duplicates added %d pool entries, want 1", got)
	}

	// The same batch without dedup runs 4 stress tests over 2 clones (two
	// waves) and must charge strictly more virtual time.
	f := newDedupSession(t, nil)
	fcfgs := make([]knob.Config, 4)
	for i := range fcfgs {
		fcfgs[i] = f.Space.Decode(f.Space.DefaultPoint())
	}
	fbase := f.Elapsed()
	fsamples, err := f.EvaluateConfigs(fcfgs)
	if err != nil {
		t.Fatal(err)
	}
	fullTime := f.Elapsed() - fbase
	if len(fsamples) != 4 {
		t.Fatalf("baseline returned %d samples, want 4", len(fsamples))
	}
	if dedupTime >= fullTime {
		t.Errorf("dedup wave charged %v, baseline %v — dedup must be cheaper", dedupTime, fullTime)
	}
}

// Mixed batches keep duplicate positions aligned with their unique run and
// leave distinct configurations untouched.
func TestDedupWavesMixedBatch(t *testing.T) {
	s := newDedupSession(t, &EvalOptions{DedupWaves: true})
	a := s.Space.DefaultPoint()
	b := s.Space.Random(s.RNG)
	cfgs := []knob.Config{
		s.Space.Decode(a), // 0: A
		s.Space.Decode(b), // 1: B
		s.Space.Decode(a), // 2: dup of A
		s.Space.Decode(a), // 3: dup of A
	}
	steps := s.Steps()
	samples, err := s.EvaluateConfigs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	if got := s.Steps() - steps; got != 2 {
		t.Errorf("mixed batch consumed %d steps, want 2 (A and B once each)", got)
	}
	for _, i := range []int{2, 3} {
		if samples[i].Step != samples[0].Step || samples[i].Perf != samples[0].Perf {
			t.Errorf("duplicate position %d does not share A's measurement", i)
		}
	}
	if samples[1].Step == samples[0].Step {
		t.Error("distinct configuration B shares A's step")
	}
	for i, smp := range samples {
		if smp.Index != i {
			t.Errorf("sample %d has Index %d", i, smp.Index)
		}
	}
}

// Without the option, duplicate configurations are measured independently —
// the seed behavior, byte-for-byte.
func TestDedupOffMeasuresDuplicates(t *testing.T) {
	s := newDedupSession(t, nil)
	pt := s.Space.DefaultPoint()
	cfgs := []knob.Config{s.Space.Decode(pt), s.Space.Decode(pt)}
	steps := s.Steps()
	samples, err := s.EvaluateConfigs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Steps() - steps; got != 2 {
		t.Fatalf("dedup-off batch consumed %d steps, want 2", got)
	}
	if samples[0].Step == samples[1].Step {
		t.Fatal("dedup-off duplicates share a step")
	}
}

// The evaluation speedups are part of the checkpoint fingerprint: resuming
// under different EvalOptions must fail closed, naming the flag.
func TestResumeEvalFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	req := ckptRequest(dir)
	req.Eval = &EvalOptions{DedupWaves: true, WarmStateDeltas: true}
	s, err := NewSession(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, err := s.EvaluateBatch([][]float64{s.Space.Random(s.RNG)}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(nil); err != nil {
		t.Fatal(err)
	}
	path := s.CheckpointPath()

	cases := []struct {
		name string
		eval *EvalOptions
		want string
	}{
		{"off", nil, "wave dedup"},
		{"no-dedup", &EvalOptions{WarmStateDeltas: true}, "wave dedup"},
		{"no-warm", &EvalOptions{DedupWaves: true}, "warm-state deltas"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := ckptRequest(dir)
			r.Eval = tc.eval
			_, _, err := ResumeSession(context.Background(), r, path)
			if err == nil {
				t.Fatal("mismatched eval options accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}

	// Matching options resume cleanly and the session keeps evaluating
	// with the speedups armed.
	r := ckptRequest(dir)
	r.Eval = &EvalOptions{DedupWaves: true, WarmStateDeltas: true}
	res, _, err := ResumeSession(context.Background(), r, path)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	pt := res.Space.DefaultPoint()
	if _, err := res.EvaluateConfigs([]knob.Config{res.Space.Decode(pt), res.Space.Decode(pt)}); err != nil {
		t.Fatal(err)
	}
}

// Checkpoint/resume identity with every speedup armed: the resumed session
// must continue bit-identically to the uninterrupted one.
func TestSpeedupsCheckpointResumeIdentity(t *testing.T) {
	mkReq := func(dir string) Request {
		r := ckptRequest(dir)
		r.Eval = &EvalOptions{DedupWaves: true, WarmStateDeltas: true}
		return r
	}
	continueRun := func(s *Session) error {
		// A wave with duplicates plus a distinct config exercises both the
		// dedup fan-out and the warm-delta Configure path after resume.
		pt := s.Space.DefaultPoint()
		_, err := s.EvaluateConfigs([]knob.Config{
			s.Space.Decode(pt),
			s.Space.Decode(pt),
			s.Space.Decode(s.Space.Random(s.RNG)),
		})
		return err
	}

	// Golden: run everything without interruption.
	gdir := t.TempDir()
	g, err := NewSession(mkReq(gdir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if _, err := g.EvaluateBatch([][]float64{g.Space.Random(g.RNG), g.Space.Random(g.RNG)}); err != nil {
		t.Fatal(err)
	}
	if err := continueRun(g); err != nil {
		t.Fatal(err)
	}

	// Interrupted: same prefix, checkpoint, resume, same continuation.
	dir := t.TempDir()
	s, err := NewSession(mkReq(dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, err := s.EvaluateBatch([][]float64{s.Space.Random(s.RNG), s.Space.Random(s.RNG)}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(nil); err != nil {
		t.Fatal(err)
	}
	r, _, err := ResumeSession(context.Background(), mkReq(dir), s.CheckpointPath())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := continueRun(r); err != nil {
		t.Fatal(err)
	}

	if r.Steps() != g.Steps() || r.WaveCount() != g.WaveCount() || r.Elapsed() != g.Elapsed() {
		t.Fatalf("resumed (%d steps, %d waves, %v) != golden (%d, %d, %v)",
			r.Steps(), r.WaveCount(), r.Elapsed(), g.Steps(), g.WaveCount(), g.Elapsed())
	}
	if r.Pool.Len() != g.Pool.Len() {
		t.Fatalf("resumed pool %d != golden %d", r.Pool.Len(), g.Pool.Len())
	}
	rs, gs := r.Pool.All(), g.Pool.All()
	for i := range gs {
		if rs[i].Perf != gs[i].Perf || rs[i].Step != gs[i].Step || rs[i].Time != gs[i].Time {
			t.Fatalf("pool entry %d diverges: %+v vs %+v", i, rs[i], gs[i])
		}
	}
	if got, want := r.RNG.Int63(), g.RNG.Int63(); got != want {
		t.Fatalf("RNG streams diverge after resume: %d != %d", got, want)
	}
}
