package tuner

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/simdb"
)

func TestDefaultStepCostsMatchTable1(t *testing.T) {
	c := DefaultStepCosts()
	if c.WorkloadExecution != time.Duration(142.7*float64(time.Second)) {
		t.Fatalf("execution = %v", c.WorkloadExecution)
	}
	if c.KnobsDeployment != time.Duration(21.3*float64(time.Second)) {
		t.Fatalf("deployment = %v", c.KnobsDeployment)
	}
	if c.ModelUpdate != 71*time.Millisecond || c.MetricsCollection != 200*time.Microsecond {
		t.Fatal("model update / metrics collection wrong")
	}
	total := c.StepTotal()
	if total < 163*time.Second || total > 166*time.Second {
		t.Fatalf("step total %v, want ≈164 s", total)
	}
}

func TestSharedPoolBestAndSort(t *testing.T) {
	p := NewSharedPool()
	def := simdb.Perf{ThroughputTPS: 100, P95LatencyMs: 100}
	if _, ok := p.Best(def, 0.5); ok {
		t.Fatal("empty pool has no best")
	}
	p.Add(
		Sample{Perf: simdb.Perf{ThroughputTPS: 110, P95LatencyMs: 90}, Step: 1},
		Sample{Perf: simdb.Perf{ThroughputTPS: 150, P95LatencyMs: 60}, Step: 2},
		Sample{Perf: simdb.FailedPerf(), Step: 3},
	)
	best, ok := p.Best(def, 0.5)
	if !ok || best.Step != 2 {
		t.Fatalf("best = %+v", best)
	}
	sorted := p.SortedByFitness(def, 0.5)
	if sorted[0].Step != 2 || sorted[len(sorted)-1].Step != 3 {
		t.Fatal("sort order wrong")
	}
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestCurveAtAndRecommendationTime(t *testing.T) {
	def := simdb.Perf{ThroughputTPS: 100, P95LatencyMs: 100}
	c := Curve{
		{Time: time.Hour, Perf: simdb.Perf{ThroughputTPS: 120, P95LatencyMs: 90}, Step: 5},
		{Time: 3 * time.Hour, Perf: simdb.Perf{ThroughputTPS: 199, P95LatencyMs: 51}, Step: 20},
		{Time: 10 * time.Hour, Perf: simdb.Perf{ThroughputTPS: 200, P95LatencyMs: 50}, Step: 80},
	}
	if _, ok := c.At(30 * time.Minute); ok {
		t.Fatal("no data before first point")
	}
	p, ok := c.At(2 * time.Hour)
	if !ok || p.ThroughputTPS != 120 {
		t.Fatalf("At(2h) = %+v", p)
	}
	// The 3 h point is within 98% of final fitness, so recommendation
	// time is 3 h, not 10 h.
	rt, step := c.RecommendationTime(def, 0.5, 0.98)
	if rt != 3*time.Hour || step != 20 {
		t.Fatalf("recommendation time %v step %d", rt, step)
	}
	final, ok := c.Final()
	if !ok || final.Step != 80 {
		t.Fatal("final wrong")
	}
	var empty Curve
	if _, ok := empty.Final(); ok {
		t.Fatal("empty curve has no final")
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	rng := sim.NewRNG(1)
	n, dim := 16, 3
	pts := LatinHypercube(n, dim, rng)
	if len(pts) != n {
		t.Fatalf("points %d", len(pts))
	}
	for d := 0; d < dim; d++ {
		vals := make([]float64, n)
		for i := range pts {
			vals[i] = pts[i][d]
		}
		sort.Float64s(vals)
		for i, v := range vals {
			lo, hi := float64(i)/float64(n), float64(i+1)/float64(n)
			if v < lo || v >= hi {
				t.Fatalf("dimension %d not stratified: value %d = %v not in [%v,%v)", d, i, v, lo, hi)
			}
		}
	}
	if LatinHypercube(0, 3, rng) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestStateNormalizer(t *testing.T) {
	n := NewStateNormalizer(2)
	data := [][]float64{{10, 1000}, {20, 2000}, {30, 3000}, {40, 4000}}
	for _, x := range data {
		n.Observe(x)
	}
	out := n.Normalize([]float64{25, 2500})
	for i, v := range out {
		if math.Abs(v) > 0.5 {
			t.Fatalf("mean input should normalize near zero, dim %d = %v", i, v)
		}
	}
	// Extreme values clamp at ±5.
	ext := n.Normalize([]float64{1e12, -1e12})
	if ext[0] != 5 || ext[1] != -5 {
		t.Fatalf("clamping broken: %v", ext)
	}
}

func TestPerturbPointBoundsProperty(t *testing.T) {
	f := func(seed int64, sigmaRaw uint8) bool {
		rng := sim.NewRNG(seed)
		sigma := float64(sigmaRaw) / 64
		p := make([]float64, 6)
		for i := range p {
			p[i] = rng.Float64()
		}
		out := PerturbPoint(p, sigma, rng)
		if len(out) != len(p) {
			return false
		}
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
