package tuner

// This file is the session half of the online safe-tuning loop (ROADMAP
// item 2, after OnlineTune's assess-deploy-monitor-rollback cycle). With
// Request.Safety set the session stops being a pure batch optimizer: at
// wave boundaries it monitors the *user's* serving instance against SLOs
// and a rolling baseline, promotes improved pool candidates through a
// replicated canary gate under a trust region, and rolls the instance
// back to the last-known-good configuration on sustained violation.
//
// Determinism: every step here runs on the single wave-loop goroutine at
// a wave boundary, consumes no RNG, and measures through the same
// virtual-clock charge discipline as the wave loop itself. The guard is
// pure bookkeeping (internal/safety), so the whole loop is a function of
// the session's deterministic measurement stream — byte-identical at any
// worker count, and its state snapshots into the checkpoint container.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/safety"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/telemetry"
)

// blockReasonCodes gives each guardrail-block reason a stable numeric code
// for telemetry events (event attrs are numeric).
var blockReasonCodes = map[string]float64{
	"canary_failed":   1,
	"slo_p99":         2,
	"slo_tps":         3,
	"baseline_margin": 4,
	"no_improvement":  5,
}

// MonitorPoint is one probe of the deployed configuration's live
// performance — the deployed-config timeline the safety experiment plots.
type MonitorPoint struct {
	Time        time.Duration
	Perf        simdb.Perf
	BaselineTPS float64
	Violation   bool
}

// SafetyReport is the session's online-safety summary: the guard's tally
// plus what ended up deployed on the user instance.
type SafetyReport struct {
	safety.Report
	DeployedTPS      float64 `json:"deployed_tps"`
	DeployedFitness  float64 `json:"deployed_fitness"`
	MonitorProbes    int     `json:"monitor_probes"`
	MonitorViolation int     `json:"monitor_violations"`
}

// Summary renders the report in the CLI's indented-block style.
func (r SafetyReport) Summary() string {
	s := r.Report.Summary()
	s += fmt.Sprintf("  monitor probes:   %d (%d violation(s))\n", r.MonitorProbes, r.MonitorViolation)
	s += fmt.Sprintf("  deployed:         %.1f tps (fitness %+.4f)\n", r.DeployedTPS, r.DeployedFitness)
	return s
}

// armSafety builds the guard and seeds the deployed-config bookkeeping
// from the user instance's default configuration. Called by NewSession
// after DefaultPerf is measured (the first baseline) and by resume with
// the restored state re-applied on top.
func (s *Session) armSafety(opts *safety.Options) error {
	if opts == nil {
		return nil
	}
	g, err := safety.NewGuard(*opts)
	if err != nil {
		return err
	}
	s.guard = g
	s.defaultCfg = s.User.Config()
	s.defaultPoint = s.Space.Encode(s.defaultCfg)
	s.deployedCfg = s.defaultCfg
	s.deployedPoint = s.defaultPoint
	s.deployedFit = 0 // Eq. 1 fitness of the default baseline is 0 by definition
	s.deployedPerf = s.DefaultPerf
	s.lastGoodCfg = s.defaultCfg
	s.lastGoodPoint = s.defaultPoint
	s.lastGoodFit = 0
	s.lastGoodPerf = s.DefaultPerf
	return nil
}

// Safety returns the online-safety report, or nil when the loop is off.
func (s *Session) Safety() *SafetyReport {
	if s.guard == nil {
		return nil
	}
	r := &SafetyReport{
		Report:          s.guard.ReportNow(),
		DeployedTPS:     s.deployedPerf.ThroughputTPS,
		DeployedFitness: s.Fitness(s.deployedPerf),
		MonitorProbes:   len(s.monitorLog),
	}
	for _, p := range s.monitorLog {
		if p.Violation {
			r.MonitorViolation++
		}
	}
	return r
}

// DeployedTimeline returns the monitoring probes of the deployed
// configuration in virtual-time order.
func (s *Session) DeployedTimeline() []MonitorPoint {
	return append([]MonitorPoint(nil), s.monitorLog...)
}

// OnlineDeployed returns what the online loop left deployed on the user
// instance and its last known performance. ok is false when the loop is
// off (batch sessions deploy once at the end, via DeployBest).
func (s *Session) OnlineDeployed() (cfg knob.Config, perf simdb.Perf, fitness float64, ok bool) {
	if s.guard == nil {
		return nil, simdb.Perf{}, 0, false
	}
	return s.deployedCfg, s.deployedPerf, s.Fitness(s.deployedPerf), true
}

// safetyStep runs the online loop at one wave boundary: monitor the
// deployed config on its cadence (possibly rolling back), then try to
// promote a better candidate on the deploy cadence.
func (s *Session) safetyStep() {
	opts := s.guard.Options()
	rolledBack := false
	s.sinceMonitor++
	if s.sinceMonitor >= opts.MonitorEvery {
		s.sinceMonitor = 0
		rolledBack = s.monitorProbe()
	}
	s.sinceDeploy++
	if s.sinceDeploy >= opts.DeployEvery {
		if rolledBack {
			// Give the restored config a full cadence of probes before
			// promoting anything new.
			s.sinceDeploy = 0
			return
		}
		s.sinceDeploy = 0
		s.tryDeploy()
	}
}

// monitorProbe measures the deployed config on the user's serving
// instance, feeds the guard's violation/drift state machines, and rolls
// back when due. Returns whether a rollback happened.
func (s *Session) monitorProbe() bool {
	perf, _, took, err := s.User.StressTest(s.Req.Workload, s.Costs.WorkloadExecution/4)
	if err != nil {
		perf = simdb.FailedPerf()
	}
	s.charge("slo_probe", took)
	v := s.guard.ObserveMonitor(perf)
	s.monitorLog = append(s.monitorLog, MonitorPoint{
		Time: s.Clock.Now(), Perf: perf, BaselineTPS: v.BaselineTPS, Violation: v.Violation,
	})
	if v.SLOBreach {
		if s.Trace != nil {
			s.Trace.Event("slo_violation",
				telemetry.A("tps", perf.ThroughputTPS),
				telemetry.A("p99_ms", perf.P99LatencyMs))
			s.tel.sloViol.Add(1)
		}
		s.logf("slo violation on deployed config",
			"tps", perf.ThroughputTPS, "p99_ms", perf.P99LatencyMs)
	}
	// Rollback outranks drift handling: when both confirm on the same
	// probe, restoring a safe config comes first; the re-baselined window
	// after the rollback then judges the restored config on the new
	// workload. Operators who prefer adaptation over reverting set
	// DriftWindow below ViolationLimit so detection fires first.
	if v.RollbackDue {
		return s.rollback()
	}
	if v.DriftDetected {
		s.onDriftDetected()
	}
	return false
}

// onDriftDetected re-baselines the session after the guard's divergence
// detector confirms a workload drift: the default perf is re-measured on
// the (already switched) workload, best-so-far tracking restarts, and the
// guard forgets judgments made under the old workload.
func (s *Session) onDriftDetected() {
	s.guard.NoteDrift()
	if s.Trace != nil {
		s.Trace.Event("drift_detected")
		s.tel.drifts.Add(1)
	}
	s.logf("workload drift detected", "workload", s.Req.Workload.Name)
	if perf, _, took, err := s.Clones[0].StressTest(s.Req.Workload, s.Costs.WorkloadExecution); err == nil {
		s.charge("drift_restress", took)
		s.DefaultPerf = perf
	}
	s.bestFit = math.Inf(-1)
	s.bestSince = s.Clock.Now()
	s.publishStatus(false)
}

// rollback restores the last-known-good configuration (or the default if
// the last-known-good is what just failed) onto the user instance and
// quarantines the region around the offending point. Returns false when
// there is nothing distinct to restore.
func (s *Session) rollback() bool {
	target, targetPoint, targetFit, targetPerf := s.lastGoodCfg, s.lastGoodPoint, s.lastGoodFit, s.lastGoodPerf
	if target == nil || target.Key() == s.deployedCfg.Key() {
		target, targetPoint, targetFit, targetPerf = s.defaultCfg, s.defaultPoint, 0, s.DefaultPerf
	}
	if target.Key() == s.deployedCfg.Key() {
		// Already on the safest config we know; quarantining or redeploying
		// it would loop. Clear the violation run and keep monitoring.
		s.guard.ResetViolations()
		return false
	}
	badPoint := s.deployedPoint
	took, err := s.deployToUser(target)
	if err != nil {
		s.logf("rollback deploy failed", "err", err.Error())
		return false
	}
	s.charge("rollback_deploy", took)
	s.guard.NoteRollback(badPoint, 0)
	s.deployedCfg = target
	s.deployedPoint = targetPoint
	s.deployedFit = targetFit
	s.deployedPerf = targetPerf
	if s.Trace != nil {
		s.Trace.Event("rollback", telemetry.A("fitness", targetFit))
		s.tel.rollbacks.Add(1)
	}
	s.logf("rolled back deployed config", "to_fitness", targetFit)
	s.publishStatus(false)
	return true
}

// tryDeploy looks for a pool candidate better than what is deployed and
// promotes it — directly in naive online mode, through the trust region
// and the replicated canary gate with guardrails on.
func (s *Session) tryDeploy() {
	opts := s.guard.Options()
	cands := s.rankedCandidates()
	for _, c := range cands {
		if !opts.Guardrails {
			s.deployCandidate(c.Knobs, c.Point, s.Fitness(c.Perf), c.Perf)
			return
		}
		point, _ := s.guard.ClampStep(s.deployedPoint, c.Point)
		cfg := s.Space.Decode(point)
		key := cfg.Key()
		if key == s.deployedCfg.Key() || s.guard.Blocked(key) || s.guard.InQuarantine(point) {
			continue
		}
		if v := s.Req.Rules.Violations(s.Space.Catalog(), cfg); len(v) > 0 {
			continue
		}
		med, ok := s.canary(cfg)
		reason := ""
		if !ok {
			reason = "canary_failed"
		} else {
			var pass bool
			pass, reason = s.guard.GateDeploy(med, s.guard.Baseline())
			if pass && s.Fitness(med) <= s.deployedFit {
				pass, reason = false, "no_improvement"
			}
			if pass {
				s.deployCandidate(cfg, point, s.Fitness(med), med)
				return
			}
		}
		s.guard.NoteBlock(key)
		if s.Trace != nil {
			s.Trace.Event("guardrail_block", telemetry.A("reason", blockReasonCodes[reason]))
			s.tel.blocks.Add(1)
		}
		s.logf("guardrail blocked deploy", "reason", reason, "tps", med.ThroughputTPS)
		// One canary per deploy slot: blocked or deployed, the slot is spent.
		return
	}
}

// rankedCandidates returns the pool samples eligible for online
// deployment, best fitness first (step order breaks ties so the ranking
// is deterministic).
func (s *Session) rankedCandidates() []Sample {
	var cands []Sample
	for _, smp := range s.Pool.All() {
		if smp.Perf.Failed || smp.Time < s.bestSince {
			continue
		}
		if s.Fitness(smp.Perf) <= s.deployedFit {
			continue
		}
		cands = append(cands, smp)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		fi, fj := s.Fitness(cands[i].Perf), s.Fitness(cands[j].Perf)
		if fi != fj {
			return fi > fj
		}
		return cands[i].Step < cands[j].Step
	})
	return cands
}

// canary stress-tests a candidate on up to CanaryReplicas clones in one
// replicated wave and aggregates the measurements with the guard's
// outlier-robust median. Canary waves ride the same actor/chaos machinery
// as tuning waves (deadline clamp, fleet repair) but produce no pool
// samples and do not count as tuning waves.
func (s *Session) canary(cfg knob.Config) (simdb.Perf, bool) {
	k := s.guard.Options().CanaryReplicas
	if k > len(s.actors) {
		k = len(s.actors)
	}
	if k == 0 {
		return simdb.FailedPerf(), false
	}
	cfgs := make([]knob.Config, k)
	for i := range cfgs {
		cfgs[i] = cfg
	}
	results := runWave(s.actors[:k], cfgs, s.Req.Workload, s.Costs, s.chaos)
	waveMax := time.Duration(0)
	perfs := make([]simdb.Perf, 0, k)
	for i := range results {
		res := &results[i]
		if s.deadline > 0 && res.took > s.deadline {
			res.took = s.deadline
			res.timedOut = true
		}
		if res.took > waveMax {
			waveMax = res.took
		}
		s.resil.Retries += int64(res.retries)
		s.resil.BackoffTime += res.backoff
		if res.timedOut {
			s.resil.Timeouts++
		}
		if res.timedOut || res.crashed || res.infra || res.execErr != nil {
			perfs = append(perfs, simdb.FailedPerf())
		} else {
			perfs = append(perfs, res.perf)
		}
	}
	s.charge("canary_wave", waveMax)
	s.guard.NoteCanary()
	s.canaryCount++
	if s.Trace != nil {
		s.Trace.Event("deploy_canary", telemetry.A("replicas", float64(k)))
		s.tel.canaries.Add(1)
	}
	if s.chaos != nil {
		s.repairFleet(results)
	}
	return s.guard.Aggregate(perfs)
}

// deployCandidate pushes a candidate onto the user instance and promotes
// the bookkeeping: the previous deployed config becomes last-known-good.
func (s *Session) deployCandidate(cfg knob.Config, point []float64, fit float64, perf simdb.Perf) {
	took, err := s.deployToUser(cfg)
	if err != nil {
		s.logf("online deploy failed", "err", err.Error())
		return
	}
	s.charge("online_deploy", took)
	s.lastGoodCfg = s.deployedCfg
	s.lastGoodPoint = s.deployedPoint
	s.lastGoodFit = s.deployedFit
	s.lastGoodPerf = s.deployedPerf
	s.deployedCfg = cfg
	s.deployedPoint = point
	s.deployedFit = fit
	s.deployedPerf = perf
	// Guarded deploys seed the fresh baseline window with the canary
	// median — a live measurement on the current workload. Naive deploys
	// only have the candidate's stale pool measurement, which may predate
	// a silent drift; seeding with it would fake a baseline, so the window
	// rebuilds from monitor probes instead.
	seedTPS := perf.ThroughputTPS
	if !s.guard.Options().Guardrails {
		seedTPS = 0
	}
	s.guard.NoteDeploy(seedTPS)
	if s.Trace != nil {
		s.Trace.Event("online_deploy", telemetry.A("fitness", fit))
		s.tel.deploys.Add(1)
	}
	s.logf("deployed candidate online", "fitness", fit, "tps", perf.ThroughputTPS)
	s.publishStatus(false)
}
