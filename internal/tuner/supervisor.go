package tuner

import (
	"fmt"
	"strings"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/telemetry"
)

// This file is the wave supervisor: the self-healing half of the chaos
// design. The chaos engine (internal/chaos) decides which faults strike;
// the supervisor decides how the session survives them — per-actor
// virtual-time deadlines, bounded retry with exponential backoff for
// transient control-plane faults, replacement clones for crashed
// instances, quarantine for slots that keep failing, and graceful wave
// degradation: a wave that loses actors completes with the surviving
// samples and is marked partial instead of erroring the session. Only
// total fleet loss surfaces as ErrFleetLost. With no chaos plan armed
// every path in this file is dead code and the session is byte-identical
// to the fault-free build.

// resilienceStats is the supervisor's running tally (persisted by
// checkpoints so a resumed run reports the whole session).
type resilienceStats struct {
	Retries      int64         // transient faults retried (deploy + provisioning)
	BackoffTime  time.Duration // virtual time spent in retry backoff
	Timeouts     int64         // actors abandoned at the wave deadline
	SamplesLost  int64         // configurations that produced no sample
	Replacements int64         // replacement clones provisioned
	Quarantined  int64         // actor slots struck out and removed
	PartialWaves int64         // waves that completed degraded
}

// ResilienceReport summarizes a session's fault history: what the chaos
// plan injected and what the supervisor did about it. Nil when no chaos
// plan was armed.
type ResilienceReport struct {
	Profile string
	Seed    int64 // chaos plan seed (the -chaos-seed value)

	Injected chaos.Counts

	Retries      int64
	BackoffTime  time.Duration
	Timeouts     int64
	SamplesLost  int64
	Replacements int64
	Quarantined  int64
	PartialWaves int64
	// FleetSize is the number of clones still in service at report time.
	FleetSize int
}

// Resilience returns the session's fault summary, or nil when no chaos
// plan is armed.
func (s *Session) Resilience() *ResilienceReport {
	if s.chaos == nil {
		return nil
	}
	plan := s.Req.Chaos
	r := &ResilienceReport{
		Profile:      s.chaos.Profile().Name,
		Injected:     s.chaos.Counts(),
		Retries:      s.resil.Retries,
		BackoffTime:  s.resil.BackoffTime,
		Timeouts:     s.resil.Timeouts,
		SamplesLost:  s.resil.SamplesLost,
		Replacements: s.resil.Replacements,
		Quarantined:  s.resil.Quarantined,
		PartialWaves: s.resil.PartialWaves,
		FleetSize:    len(s.Clones),
	}
	if plan != nil {
		r.Seed = plan.Seed
	}
	return r
}

// Summary renders the report as a multi-line fault summary block. The
// output is a pure function of the report (no wall-clock anywhere), so it
// is byte-identical across worker counts and resumes.
func (r *ResilienceReport) Summary() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chaos profile %q (seed %d): %d fault(s) injected\n",
		r.Profile, r.Seed, r.Injected.Total())
	fmt.Fprintf(&b, "  injected: boot-failures %d, transients %d, crashes %d, slow-io %d, hangs %d\n",
		r.Injected.BootFailures, r.Injected.Transients, r.Injected.Crashes,
		r.Injected.SlowIO, r.Injected.Hangs)
	fmt.Fprintf(&b, "  healed:   retries %d (backoff %s), timeouts %d, replacements %d, quarantined %d\n",
		r.Retries, r.BackoffTime, r.Timeouts, r.Replacements, r.Quarantined)
	fmt.Fprintf(&b, "  degraded: partial waves %d, samples lost %d, %d clone(s) in service\n",
		r.PartialWaves, r.SamplesLost, r.FleetSize)
	return b.String()
}

// nominalStep is the fault-free virtual cost of one actor step, restart
// included — the base the per-actor deadline is a multiple of.
func nominalStep(c StepCosts) time.Duration {
	return c.KnobsDeployment + cloud.RestartTime + c.KnobsRecommendation +
		c.WorkloadExecution + c.MetricsCollection
}

// armChaos installs the fault plan on a new session: the injector's seed
// is forked from the session RNG and mixed with the plan seed, so varying
// -chaos-seed re-rolls the faults without re-seeding the tuning
// trajectory. Called before any instance is provisioned.
func (s *Session) armChaos(plan *chaos.Plan) {
	if !plan.Enabled() {
		return
	}
	s.chaos = chaos.NewEngine(s.RNG.Int63()^plan.Seed, plan.Profile)
	s.Provider.SetChaos(s.chaos)
	s.deadline = time.Duration(s.chaos.DeadlineFactor() * float64(nominalStep(s.Costs)))
}

// createWithRetry provisions an instance, absorbing injected boot
// failures and transient faults with bounded backoff (charged to the
// virtual clock). Fault-free it is exactly one CreateInstance call.
func (s *Session) createWithRetry(t cloud.InstanceType, d simdb.Dialect) (*cloud.Instance, error) {
	return s.provisionWithRetry("create", func() (*cloud.Instance, error) {
		return s.Provider.CreateInstance(t, d)
	})
}

// cloneWithRetry clones src with the same bounded-retry policy.
func (s *Session) cloneWithRetry(src *cloud.Instance) (*cloud.Instance, error) {
	return s.provisionWithRetry("clone", func() (*cloud.Instance, error) {
		return s.Provider.Clone(src)
	})
}

func (s *Session) provisionWithRetry(what string, provision func() (*cloud.Instance, error)) (*cloud.Instance, error) {
	for attempt := 0; ; attempt++ {
		inst, err := provision()
		if err == nil {
			return inst, nil
		}
		if !cloud.IsTransient(err) && !cloud.IsBootFailure(err) {
			return nil, err
		}
		if attempt >= s.chaos.MaxRetries() {
			return nil, err
		}
		b := s.chaos.Backoff(attempt)
		s.charge("provision_backoff", b)
		s.resil.Retries++
		s.resil.BackoffTime += b
		if s.tel != nil {
			s.tel.backoffH.Observe(b)
		}
		s.logf("provisioning fault, retrying", "op", what, "attempt", attempt+1, "err", err.Error())
	}
}

// releaseFleet returns every provisioned instance to the provider. It is
// the cleanup half of Close, and what a failed NewSession must call so a
// partial fleet is not leaked onto the provider.
func (s *Session) releaseFleet() {
	for _, c := range s.Clones {
		s.Provider.Release(c)
	}
	s.Clones = nil
	s.actors = nil
	if s.User != nil {
		s.Provider.Release(s.User)
		s.User = nil
	}
}

// repairFleet runs after a degraded wave has been fully accounted:
// crashed and hung actors get replacement clones (one parallel clone-time
// charge per repair pass), and slots that have struck out are quarantined
// — the fleet shrinks gracefully and the GA batch size adapts. Invariants:
// s.actors[i] owns s.Clones[i] before and after.
func (s *Session) repairFleet(results []actorResult) {
	replaced := false
	keepActors := s.actors[:0]
	keepClones := s.Clones[:0]
	for k, a := range s.actors {
		faulted := false
		dead := false
		if k < len(results) {
			res := results[k]
			faulted = res.crashed || res.infra || res.timedOut
			dead = res.crashed || res.timedOut
		}
		if faulted {
			a.strikes++
		}
		if a.strikes >= s.chaos.QuarantineAfter() {
			s.resil.Quarantined++
			s.Provider.Release(a.Clone)
			if s.Trace != nil {
				s.Trace.Event("actor_quarantined", telemetry.A("actor", float64(a.ID)))
			}
			s.logf("actor quarantined", "actor", a.ID, "strikes", a.strikes, "fleet", len(keepClones))
			continue
		}
		if dead {
			// The clone is gone (crashed engine or abandoned hang):
			// provision a replacement from the user's backup.
			s.Provider.Release(a.Clone)
			c, err := s.cloneWithRetry(s.User)
			if err != nil {
				// No replacement to be had: the slot is out of service.
				s.resil.Quarantined++
				if s.Trace != nil {
					s.Trace.Event("actor_quarantined", telemetry.A("actor", float64(a.ID)))
				}
				s.logf("actor lost, replacement failed", "actor", a.ID, "err", err.Error())
				continue
			}
			a.Clone = c
			if s.warmStateDeltas() {
				applyWarmDeltas(c)
			}
			s.resil.Replacements++
			replaced = true
			if s.Trace != nil {
				s.Trace.Event("clone_replaced", telemetry.A("actor", float64(a.ID)))
			}
			s.logf("clone replaced", "actor", a.ID, "clone", c.ID)
		}
		keepActors = append(keepActors, a)
		keepClones = append(keepClones, a.Clone)
	}
	s.actors = keepActors
	s.Clones = keepClones
	if replaced {
		// Replacements are provisioned in parallel: one clone-time charge.
		s.charge("replace_clone", cloud.CloneTime)
	}
}
