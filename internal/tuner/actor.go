package tuner

import (
	"errors"
	"sync"
	"time"

	"github.com/hunter-cdb/hunter/internal/chaos"
	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// Actor is the Controller-side worker of Figure 2: it owns one cloned CDB,
// deploys configurations on it, drives the workload execution, and
// collects the runtime metrics. A wave of configurations is stress-tested
// by running every Actor concurrently (real goroutines — the simulation is
// parallel in wall-clock too); each Actor reports the virtual time its
// step consumed, and the Controller advances the shared clock by the
// slowest Actor in the wave.
type Actor struct {
	ID    int
	Clone *cloud.Instance

	// seq counts the actor's stress-test steps — one of the chaos engine's
	// deterministic fault keys, so it persists across checkpoint/resume.
	seq int64
	// strikes counts this actor's faults toward quarantine. The counter
	// belongs to the actor slot, not the clone: a replacement clone that
	// keeps failing still strikes the same slot out.
	strikes int
}

// actorResult is one stress-test outcome before session bookkeeping.
type actorResult struct {
	perf    simdb.Perf
	state   metrics.Vector
	took    time.Duration
	failed  bool
	execErr error

	// Fault bookkeeping (only ever set when a chaos plan is armed).
	retries  int           // transient-deploy retries performed
	backoff  time.Duration // virtual time spent backing off (inside took)
	crashed  bool          // the clone's engine died mid-stress-test
	infra    bool          // transient control-plane fault, retries exhausted
	timedOut bool          // set by the supervisor when took exceeds the deadline
}

// run deploys cfg and executes the workload once, returning the outcome
// and the virtual duration of the whole step. With a chaos engine armed it
// also realizes this step's fault plan: transient deploy errors are
// retried with exponential backoff (charged into took), crash and slow-I/O
// faults are armed on the engine before the run, and a hung actor reports
// a duration far past any deadline. With ch == nil every chaos branch is
// dead and the step is byte-identical to the fault-free path.
func (a *Actor) run(cfg knob.Config, p *workload.Profile, costs StepCosts, ch *chaos.Engine) actorResult {
	var res actorResult
	seq := a.seq
	a.seq++

	var deployTook time.Duration
	var err error
	for attempt := 0; ; attempt++ {
		_, deployTook, err = a.Clone.Deploy(cfg, costs.KnobsDeployment)
		res.took += deployTook
		if err == nil || !cloud.IsTransient(err) || attempt >= ch.MaxRetries() {
			break
		}
		b := ch.Backoff(attempt)
		res.took += b
		res.backoff += b
		res.retries++
	}
	res.took += costs.KnobsRecommendation
	if err != nil {
		if cloud.IsTransient(err) {
			// Retries exhausted on a control-plane fault: this says nothing
			// about the configuration, so no −1000 — the sample is lost and
			// the supervisor strikes the slot.
			res.infra = true
			res.execErr = err
			return res
		}
		// Boot failure: skip the workload execution, score −1000 (§2.1).
		res.perf = simdb.FailedPerf()
		res.failed = true
		return res
	}

	id := int64(a.ID)
	crashed := ch.Crash(id, seq)
	if crashed {
		a.Clone.Engine().InjectCrash()
	} else if f, ok := ch.SlowIO(id, seq); ok {
		a.Clone.Engine().InjectSlowIO(f)
	}

	perf, mv, ran, rerr := a.Clone.StressTest(p, costs.WorkloadExecution)
	if rerr != nil {
		if errors.Is(rerr, simdb.ErrCrashed) {
			// The instance died partway through the window; the wave is
			// still charged for the portion that ran before the crash.
			res.took += time.Duration(ch.CrashFraction(id, seq) * float64(costs.WorkloadExecution))
			res.crashed = true
		}
		res.execErr = rerr
		return res
	}
	res.perf = perf
	res.state = mv
	res.took += ran + costs.MetricsCollection
	if ch.Hang(id, seq) {
		// A hung actor never reports back: stretch its step far past the
		// wave deadline so the supervisor is guaranteed to abandon it.
		res.took = time.Duration(float64(res.took) * ch.HangFactor())
	}
	return res
}

// runWave stress-tests one configuration per actor concurrently and
// returns the results in actor order (deterministic regardless of
// goroutine scheduling — every fault decision is a pure function of the
// chaos seed and per-actor sequence numbers, never of timing).
func runWave(actors []*Actor, cfgs []knob.Config, p *workload.Profile, costs StepCosts, ch *chaos.Engine) []actorResult {
	out := make([]actorResult, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = actors[i].run(cfgs[i], p, costs, ch)
		}(i)
	}
	wg.Wait()
	return out
}
