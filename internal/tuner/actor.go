package tuner

import (
	"sync"
	"time"

	"github.com/hunter-cdb/hunter/internal/cloud"
	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/metrics"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// Actor is the Controller-side worker of Figure 2: it owns one cloned CDB,
// deploys configurations on it, drives the workload execution, and
// collects the runtime metrics. A wave of configurations is stress-tested
// by running every Actor concurrently (real goroutines — the simulation is
// parallel in wall-clock too); each Actor reports the virtual time its
// step consumed, and the Controller advances the shared clock by the
// slowest Actor in the wave.
type Actor struct {
	ID    int
	Clone *cloud.Instance
}

// actorResult is one stress-test outcome before session bookkeeping.
type actorResult struct {
	perf    simdb.Perf
	state   metrics.Vector
	took    time.Duration
	failed  bool
	execErr error
}

// run deploys cfg and executes the workload once, returning the outcome
// and the virtual duration of the whole step.
func (a *Actor) run(cfg knob.Config, p *workload.Profile, costs StepCosts) actorResult {
	var res actorResult
	_, deployTook, err := a.Clone.Deploy(cfg, costs.KnobsDeployment)
	res.took = deployTook + costs.KnobsRecommendation
	if err != nil {
		// Boot failure: skip the workload execution, score −1000 (§2.1).
		res.perf = simdb.FailedPerf()
		res.failed = true
		return res
	}
	perf, mv, ran, rerr := a.Clone.StressTest(p, costs.WorkloadExecution)
	if rerr != nil {
		res.execErr = rerr
		return res
	}
	res.perf = perf
	res.state = mv
	res.took += ran + costs.MetricsCollection
	return res
}

// runWave stress-tests one configuration per actor concurrently and
// returns the results in actor order (deterministic regardless of
// goroutine scheduling).
func runWave(actors []*Actor, cfgs []knob.Config, p *workload.Profile, costs StepCosts) []actorResult {
	out := make([]actorResult, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = actors[i].run(cfgs[i], p, costs)
		}(i)
	}
	wg.Wait()
	return out
}
