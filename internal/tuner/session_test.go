package tuner

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/knob"
	"github.com/hunter-cdb/hunter/internal/sim"
	"github.com/hunter-cdb/hunter/internal/simdb"
	"github.com/hunter-cdb/hunter/internal/workload"
)

func newTestSession(t *testing.T, clones int, budget time.Duration) *Session {
	t.Helper()
	s, err := NewSession(Request{
		Workload: workload.TPCC(),
		Budget:   budget,
		Clones:   clones,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSessionDefaults(t *testing.T) {
	s := newTestSession(t, 1, time.Hour)
	if s.Req.Type.Name != "F" {
		t.Fatalf("default instance type %s, want F", s.Req.Type.Name)
	}
	if len(s.Req.KnobNames) != 65 {
		t.Fatalf("default knob set %d, want 65", len(s.Req.KnobNames))
	}
	if s.Alpha != 0.5 {
		t.Fatalf("default alpha %v", s.Alpha)
	}
	if s.DefaultPerf.ThroughputTPS <= 0 {
		t.Fatal("default perf not measured")
	}
	if s.Elapsed() <= 0 {
		t.Fatal("setup must consume virtual time (clone + default stress test)")
	}
}

func TestSessionRequestValidation(t *testing.T) {
	if _, err := NewSession(Request{}); err == nil {
		t.Fatal("request without workload should fail")
	}
	bad := workload.TPCC()
	bad.Threads = 0
	if _, err := NewSession(Request{Workload: bad}); err == nil {
		t.Fatal("invalid workload should fail")
	}
	if _, err := NewSession(Request{
		Workload: workload.TPCC(),
		Rules:    knob.NewRules().Fix("no_such", 1),
	}); err == nil {
		t.Fatal("rules referencing unknown knobs should fail")
	}
}

func TestEvaluateAddsToPoolAndCurve(t *testing.T) {
	s := newTestSession(t, 1, 10*time.Hour)
	smp, err := s.Evaluate(s.Space.Random(s.RNG))
	if err != nil {
		t.Fatal(err)
	}
	if s.Pool.Len() != 1 || s.Steps() != 1 {
		t.Fatalf("pool %d steps %d", s.Pool.Len(), s.Steps())
	}
	if smp.Time <= 0 || len(smp.Point) != s.Space.Dim() {
		t.Fatalf("sample incomplete: %+v", smp)
	}
	if len(s.Curve()) == 0 {
		t.Fatal("first sample should extend the curve (or a later one)")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	s := newTestSession(t, 1, 20*time.Minute) // setup eats ~5–6 min
	var total int
	for i := 0; i < 100; i++ {
		_, err := s.Evaluate(s.Space.Random(s.RNG))
		if err != nil {
			if !errors.Is(err, ErrBudgetExhausted) {
				t.Fatal(err)
			}
			break
		}
		total++
	}
	if !s.Exhausted() {
		t.Fatal("session should be exhausted")
	}
	if total == 0 || total > 10 {
		t.Fatalf("20-minute budget allowed %d evaluations", total)
	}
	if s.Remaining() != 0 {
		t.Fatalf("remaining = %v", s.Remaining())
	}
}

func TestParallelWaveAccounting(t *testing.T) {
	// The same 20 configurations must cost several times less virtual
	// time on 5 clones than on 1. The speedup is below the ideal 5×
	// because each wave lasts as long as its slowest instance (restarts
	// and warm-ups differ per configuration).
	mkPoints := func(s *Session) [][]float64 {
		rng := sim.NewRNG(99)
		pts := make([][]float64, 20)
		for i := range pts {
			pts[i] = s.Space.Random(rng)
			// Keep every configuration bootable: a failed boot skips the
			// execution and would make serial steps artificially cheap.
			for d := range pts[i] {
				if pts[i][d] > 0.8 {
					pts[i][d] = 0.8
				}
			}
		}
		return pts
	}
	s1 := newTestSession(t, 1, 100*time.Hour)
	base1 := s1.Elapsed()
	if _, err := s1.EvaluateBatch(mkPoints(s1)); err != nil {
		t.Fatal(err)
	}
	serial := s1.Elapsed() - base1

	s5 := newTestSession(t, 5, 100*time.Hour)
	base5 := s5.Elapsed()
	if _, err := s5.EvaluateBatch(mkPoints(s5)); err != nil {
		t.Fatal(err)
	}
	parallel := s5.Elapsed() - base5

	ratio := float64(serial) / float64(parallel)
	if ratio < 2.8 || ratio > 5.5 {
		t.Fatalf("5-clone speedup %.2f, want ≈3–5 (serial %v parallel %v)", ratio, serial, parallel)
	}
}

func TestBootFailureScoring(t *testing.T) {
	s := newTestSession(t, 1, 10*time.Hour)
	// Force an impossible config: buffer pool at max (64 GB > 32 GB RAM).
	pt := s.Space.DefaultPoint()
	for i, name := range s.Space.Names() {
		if name == "innodb_buffer_pool_size" {
			pt[i] = 1
		}
	}
	before := s.Elapsed()
	smp, err := s.Evaluate(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !smp.Perf.Failed || smp.Perf.ThroughputTPS != -1000 {
		t.Fatalf("boot failure not scored per §2.1: %+v", smp.Perf)
	}
	// Skipped execution: the step must cost far less than a full one.
	if cost := s.Elapsed() - before; cost > time.Minute {
		t.Fatalf("failed step cost %v, should skip the workload execution", cost)
	}
	if s.Fitness(smp.Perf) != -10 {
		t.Fatal("failed fitness should be the floor")
	}
}

func TestRulesEnforcedInEverySample(t *testing.T) {
	rules := knob.NewRules().
		Fix("innodb_adaptive_hash_index", 0).
		Range("innodb_buffer_pool_size", 1<<30, 8<<30)
	s, err := NewSession(Request{
		Workload: workload.SysbenchRW(),
		Budget:   8 * time.Hour,
		Rules:    rules,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pts := make([][]float64, 8)
	for i := range pts {
		pts[i] = s.Space.Random(s.RNG)
	}
	if _, err := s.EvaluateBatch(pts); err != nil {
		t.Fatal(err)
	}
	for _, smp := range s.Pool.All() {
		if v := rules.Violations(s.Space.Catalog(), smp.Knobs); len(v) > 0 {
			t.Fatalf("sample violates rules: %v", v)
		}
	}
}

func TestDeployBest(t *testing.T) {
	s := newTestSession(t, 1, 10*time.Hour)
	if _, err := s.DeployBest(); err == nil {
		t.Fatal("deploy with empty pool should fail")
	}
	if _, err := s.Evaluate(s.Space.Random(s.RNG)); err != nil {
		t.Fatal(err)
	}
	best, err := s.DeployBest()
	if err != nil {
		t.Fatal(err)
	}
	// The user instance now runs the best config.
	for name, v := range best.Knobs {
		if got := s.User.Config().Get(name, v); got != v {
			t.Fatalf("user instance knob %s = %v, want %v", name, got, v)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewSessionContext(ctx, Request{
		Workload: workload.TPCC(),
		Budget:   100 * time.Hour,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cancel()
	if !s.Exhausted() {
		t.Fatal("cancelled session should be exhausted")
	}
	if _, err := s.Evaluate(s.Space.Random(s.RNG)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("expected budget error after cancel, got %v", err)
	}
}

func TestAlphaFromRules(t *testing.T) {
	s, err := NewSession(Request{
		Workload: workload.TPCC(),
		Budget:   time.Hour,
		Rules:    knob.NewRules().SetAlpha(0.9),
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Alpha != 0.9 {
		t.Fatalf("alpha = %v", s.Alpha)
	}
	// Fitness with α=0.9 weights throughput 9:1.
	p := simdb.Perf{ThroughputTPS: s.DefaultPerf.ThroughputTPS * 2, P95LatencyMs: s.DefaultPerf.P95LatencyMs}
	if f := s.Fitness(p); f < 0.85 || f > 0.95 {
		t.Fatalf("fitness %v, want ≈0.9", f)
	}
}

func TestChargeModelUpdate(t *testing.T) {
	s := newTestSession(t, 1, time.Hour)
	before := s.Elapsed()
	s.ChargeModelUpdate()
	if s.Elapsed()-before != s.Costs.ModelUpdate {
		t.Fatal("model update not charged")
	}
	if s.ModelUpdateTime() != s.Costs.ModelUpdate {
		t.Fatal("model update not tracked")
	}
}

func TestTail99Objective(t *testing.T) {
	s, err := NewSession(Request{
		Workload: workload.TPCC(),
		Budget:   time.Hour,
		Rules:    func() *knob.Rules { r := knob.NewRules(); r.OptimizeTail99(); return r }(),
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A perf that improves p95 but regresses p99 must score worse under
	// the tail-99 objective than under the default.
	p := s.DefaultPerf
	p.P95LatencyMs *= 0.5
	p.P99LatencyMs *= 2
	f99 := s.Fitness(p)
	f95 := p.Fitness(s.DefaultPerf, s.Alpha)
	if f99 >= f95 {
		t.Fatalf("tail-99 objective should punish p99 regression: f99=%.3f f95=%.3f", f99, f95)
	}
}

func TestScheduleDriftValidation(t *testing.T) {
	s := newTestSession(t, 1, time.Hour)
	bad := &workload.Profile{}
	if err := s.ScheduleDrift(time.Minute, bad); err == nil {
		t.Fatal("invalid drift workload should be rejected")
	}
}

func TestDriftFiresAndResetsBest(t *testing.T) {
	s, err := NewSession(Request{
		Workload: workload.SysbenchRO(),
		Budget:   8 * time.Hour,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ScheduleDrift(s.Elapsed()+30*time.Minute, workload.SysbenchWO()); err != nil {
		t.Fatal(err)
	}
	var preBest Sample
	for i := 0; i < 14; i++ {
		if _, err := s.Evaluate(s.Space.Random(s.RNG)); err != nil {
			t.Fatal(err)
		}
		if !s.Drifted() {
			preBest, _ = s.Best()
		}
	}
	if !s.Drifted() {
		t.Fatal("drift never fired")
	}
	if s.Req.Workload.Name != "sysbench-wo" {
		t.Fatalf("workload not switched: %s", s.Req.Workload.Name)
	}
	post, ok := s.Best()
	if !ok {
		t.Fatal("no post-drift best")
	}
	if post.Time < s.Elapsed()-8*time.Hour && post.Step == preBest.Step {
		t.Fatal("post-drift best must come from post-drift samples")
	}
	for _, smp := range s.Pool.All() {
		if smp.Step == post.Step && smp.Time < 30*time.Minute {
			t.Fatal("post-drift best measured before the drift")
		}
	}
}

func TestEvaluateConfigsChargesErroringWave(t *testing.T) {
	s := newTestSession(t, 2, 100*time.Hour)
	// A healthy wave first, so the error wave below starts from a
	// non-trivial clock/pool state.
	warm := []knob.Config{
		s.Space.Decode(s.Space.Random(s.RNG)),
		s.Space.Decode(s.Space.Random(s.RNG)),
	}
	if _, err := s.EvaluateConfigs(warm); err != nil {
		t.Fatal(err)
	}
	before := s.Elapsed()
	poolBefore := s.Pool.Len()
	stepsBefore := s.Steps()

	// Swap in a workload that fails engine-side validation: every actor in
	// the wave deploys its knobs, then errors during the stress test.
	bad := *s.Req.Workload
	bad.Threads = 0
	s.Req.Workload = &bad

	out, err := s.EvaluateConfigs(warm)
	if err == nil {
		t.Fatal("invalid workload must surface the execution error")
	}
	if len(out) != 0 {
		t.Fatalf("erroring wave returned %d samples, want 0", len(out))
	}
	if s.Pool.Len() != poolBefore || s.Steps() != stepsBefore {
		t.Fatalf("erroring wave changed pool/steps: pool %d→%d steps %d→%d",
			poolBefore, s.Pool.Len(), stepsBefore, s.Steps())
	}
	// The erroring actors still occupied their instances through deployment
	// and knob recommendation, so the wave must charge at least that much
	// virtual time. (The old code returned before advancing the clock.)
	charged := s.Elapsed() - before
	min := s.Costs.KnobsDeployment + s.Costs.KnobsRecommendation
	if charged < min {
		t.Fatalf("erroring wave charged %v virtual time, want >= %v", charged, min)
	}
}

// BenchmarkEvaluateConfigsWave measures the hot loop every tuning step
// funds: one wave of configurations deployed and stress-tested across the
// cloned CDBs. The b.N loop reuses one session so engine scratch state
// (buffer pool, lock table, latency buffers, access plan) is exercised the
// way long tuning sessions exercise it.
func BenchmarkEvaluateConfigsWave(b *testing.B) {
	s, err := NewSession(Request{
		Workload: workload.TPCC(),
		Budget:   1 << 62, // effectively unbounded; the benchmark drives steps
		Clones:   4,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	wave := make([]knob.Config, 4)
	for i := range wave {
		wave[i] = s.Space.Decode(s.Space.Random(s.RNG))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EvaluateConfigs(wave); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateConfigsDedup measures a wave of byte-identical
// configurations (the degenerate wave GA convergence produces) with and
// without wave dedup: dedup runs one stress test and fans the sample out.
func BenchmarkEvaluateConfigsDedup(b *testing.B) {
	for _, mode := range []struct {
		name string
		eval *EvalOptions
	}{
		{"off", nil},
		{"on", &EvalOptions{DedupWaves: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := NewSession(Request{
				Workload: workload.TPCC(),
				Budget:   1 << 62,
				Clones:   4,
				Seed:     1,
				Eval:     mode.eval,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			wave := make([]knob.Config, 4)
			for i := range wave {
				wave[i] = s.Space.Decode(s.Space.DefaultPoint())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.EvaluateConfigs(wave); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
