package tuner

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/telemetry"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// ckptRequest is the fixed fingerprint the checkpoint round-trip tests
// run under.
func ckptRequest(dir string) Request {
	return Request{
		Workload:   workload.TPCC(),
		Budget:     2 * time.Hour,
		Clones:     2,
		Seed:       11,
		Checkpoint: &CheckpointPolicy{Dir: dir},
	}
}

// writeTestCheckpoint runs a session through a couple of waves and
// snapshots it.
func writeTestCheckpoint(t *testing.T, dir string) *Session {
	t.Helper()
	s, err := NewSession(ckptRequest(dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	for i := 0; i < 2; i++ {
		if _, err := s.EvaluateBatch([][]float64{s.Space.Random(s.RNG), s.Space.Random(s.RNG)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteCheckpoint(nil); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := writeTestCheckpoint(t, dir)
	path := s.CheckpointPath()

	wave, clock, err := PeekCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if wave != s.WaveCount() || clock != s.Elapsed() {
		t.Fatalf("peek (%d, %v), session has (%d, %v)", wave, clock, s.WaveCount(), s.Elapsed())
	}

	r, f, err := ResumeSession(context.Background(), ckptRequest(dir), path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if f == nil {
		t.Fatal("no checkpoint file returned")
	}
	if r.WaveCount() != s.WaveCount() || r.Steps() != s.Steps() || r.Elapsed() != s.Elapsed() {
		t.Fatalf("resumed (%d waves, %d steps, %v) != original (%d, %d, %v)",
			r.WaveCount(), r.Steps(), r.Elapsed(), s.WaveCount(), s.Steps(), s.Elapsed())
	}
	if r.Pool.Len() != s.Pool.Len() {
		t.Fatalf("resumed pool %d != original %d", r.Pool.Len(), s.Pool.Len())
	}
	if got, want := r.RNG.Int63(), s.RNG.Int63(); got != want {
		t.Fatalf("resumed RNG stream diverges: %d != %d", got, want)
	}
	if len(r.Clones) != len(s.Clones) || r.User == nil {
		t.Fatal("fleet not reconnected")
	}
	// The resumed session must be fully usable.
	if _, err := r.EvaluateBatch([][]float64{r.Space.Random(r.RNG)}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointHistogramRoundTrip extends the resume-identity contract
// to histograms: a restored recorder's full text exposition — counters,
// gauges AND histogram buckets — must match the original byte for byte,
// exactly as a restarted process would reconstruct it.
func TestCheckpointHistogramRoundTrip(t *testing.T) {
	dir := t.TempDir()
	req := ckptRequest(dir)
	req.Recorder = telemetry.New()
	s, err := NewSession(req)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.EvaluateBatch([][]float64{s.Space.Random(s.RNG), s.Space.Random(s.RNG)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteCheckpoint(nil); err != nil {
		t.Fatal(err)
	}
	var orig bytes.Buffer
	if err := req.Recorder.WriteText(&orig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(orig.String(), "tuner.wave_seconds_count 2") {
		t.Fatalf("session did not populate wave histogram:\n%s", orig.String())
	}

	req2 := ckptRequest(dir)
	req2.Recorder = telemetry.New()
	r, _, err := ResumeSession(context.Background(), req2, s.CheckpointPath())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var restored bytes.Buffer
	if err := req2.Recorder.WriteText(&restored); err != nil {
		t.Fatal(err)
	}
	if orig.String() != restored.String() {
		t.Fatalf("restored exposition differs:\n--- original\n%s--- restored\n%s", orig.String(), restored.String())
	}
}

func TestResumeFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	s := writeTestCheckpoint(t, dir)
	path := s.CheckpointPath()

	cases := []struct {
		name   string
		mutate func(*Request)
		want   string
	}{
		{"seed", func(r *Request) { r.Seed = 99 }, "seed"},
		{"clones", func(r *Request) { r.Clones = 5 }, "clones"},
		{"budget", func(r *Request) { r.Budget = time.Hour }, "budget"},
		{"workload", func(r *Request) { r.Workload = workload.SysbenchRO() }, "workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := ckptRequest(dir)
			tc.mutate(&req)
			_, _, err := ResumeSession(context.Background(), req, path)
			if err == nil {
				t.Fatal("mismatched request accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the mismatched field %q", err, tc.want)
			}
		})
	}
}

// TestResumeCorruptCheckpoint verifies resume fails closed on damaged
// files: truncation, bit flips and bad magic are all rejected before any
// state is handed out.
func TestResumeCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := writeTestCheckpoint(t, dir)
	good, err := os.ReadFile(s.CheckpointPath())
	if err != nil {
		t.Fatal(err)
	}
	try := func(name string, data []byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), CheckpointFileName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResumeSession(context.Background(), ckptRequest(dir), path); err == nil {
			t.Fatalf("%s: corrupt checkpoint accepted", name)
		}
		if _, _, err := PeekCheckpoint(path); err == nil {
			t.Fatalf("%s: corrupt checkpoint peeked", name)
		}
	}
	for _, cut := range []int{0, 4, len(good) / 2, len(good) - 1} {
		try("truncated", good[:cut])
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	try("bad magic", bad)
	bad = append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x10
	try("bit flip", bad)
	if _, _, err := ResumeSession(context.Background(), ckptRequest(dir),
		filepath.Join(t.TempDir(), CheckpointFileName)); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}
