package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the simulator and the learning
// algorithms need. Every component in the repository receives its RNG from
// its caller (seeded at the session boundary) so runs are reproducible.
//
// The underlying source is gfsrSource, a bit-exact clone of math/rand's
// default source with exportable state, so a checkpointed session can
// restore every stream mid-sequence (see State and SetState).
type RNG struct {
	*rand.Rand
	src *gfsrSource
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	src := newGFSR(seed)
	return &RNG{Rand: rand.New(src), src: src}
}

// RNGState is the complete serializable state of an RNG stream: the lagged
// Fibonacci vector plus the two rolling indices.
type RNGState struct {
	Vec       []int64
	Tap, Feed int
}

// State exports the full generator state. Restoring it with SetState on any
// RNG continues the stream exactly where this one stands.
func (r *RNG) State() RNGState { return r.src.state() }

// SetState reinstates a state captured by State. The RNG's subsequent
// output is identical to the captured stream's continuation. Invalid states
// are rejected without modifying the RNG.
func (r *RNG) SetState(st RNGState) error { return r.src.setState(st) }

type errBadRNGState int

func (e errBadRNGState) Error() string {
	return fmt.Sprintf("sim: RNG state has %d vector words, want %d", int(e), gfsrLen)
}

type errBadRNGPos struct{ tap, feed int }

func (e errBadRNGPos) Error() string {
	return fmt.Sprintf("sim: RNG state indices tap=%d feed=%d out of range [0,%d)", e.tap, e.feed, gfsrLen)
}

// Fork derives an independent child RNG. Children are used when work fans
// out to parallel actors so each actor's stream is stable regardless of
// scheduling order.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Int63())
}

// Gaussian returns a normally distributed sample with the given mean and
// standard deviation.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Uniform returns a sample uniformly distributed in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Zipf draws keys in [0, n) with Zipfian skew s (>1 means skewed; the
// common OLTP benchmark setting is around 1.1–1.3). It is used by the
// workload generators to model hot rows, which in turn drives buffer-pool
// hit ratios and lock contention in the simulated engine.
type Zipf struct {
	z *rand.Zipf
	n uint64
}

// NewZipf creates a Zipf sampler over [0, n) with exponent s (must be >1).
func NewZipf(r *RNG, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	return &Zipf{z: rand.NewZipf(r.Rand, s, 1, n-1), n: n}
}

// Next returns the next key.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// N returns the key-space size.
func (z *Zipf) N() uint64 { return z.n }

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}
