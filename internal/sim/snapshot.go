package sim

import (
	"encoding/gob"
	"io"
)

// SnapshotTo serializes the RNG's full generator state (checkpoint.Snapshotter).
func (r *RNG) SnapshotTo(w io.Writer) error {
	return gob.NewEncoder(w).Encode(r.State())
}

// RestoreFrom reinstates a state written by SnapshotTo
// (checkpoint.Restorer). The RNG is unchanged on error.
func (r *RNG) RestoreFrom(rd io.Reader) error {
	var st RNGState
	if err := gob.NewDecoder(rd).Decode(&st); err != nil {
		return err
	}
	return r.SetState(st)
}
