// Package sim provides the simulation substrate shared by the whole
// repository: a virtual clock that stands in for the tens of wall-clock
// hours a real tuning session consumes, and deterministic random-number
// utilities so every experiment is reproducible.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock. All tuning-session durations in this repository
// (workload execution, knob deployment, restarts, model updates) advance a
// Clock rather than sleeping, which lets a simulated 70-hour tuning run
// complete in milliseconds while preserving every time-dependent behaviour
// of the paper (recommendation time, time budgets, parallel speedups).
//
// A Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock positioned at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from session start.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative advances are rejected so
// the clock is guaranteed monotone.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to the absolute virtual time t. It is a
// no-op when t is in the past, which makes it convenient for joining
// parallel actors: each actor computes its own completion time and the
// controller advances the shared clock to the maximum.
func (c *Clock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// Hours reports the current virtual time in fractional hours. Experiment
// output uses hours because every figure in the paper does.
func (c *Clock) Hours() float64 { return c.Now().Hours() }
