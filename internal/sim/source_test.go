package sim

import (
	"math/rand"
	"testing"
)

// TestGFSRMatchesStdlib pins gfsrSource to math/rand's default source: every
// checkpoint/resume guarantee rests on the two producing identical streams.
func TestGFSRMatchesStdlib(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40, 2147483646, 2147483647} {
		std := rand.New(rand.NewSource(seed))
		got := NewRNG(seed)
		for i := 0; i < 2000; i++ {
			if a, b := std.Int63(), got.Int63(); a != b {
				t.Fatalf("seed %d: Int63 #%d: stdlib %d, gfsr %d", seed, i, a, b)
			}
		}
		// Exercise the derived draws too: they consume the source through
		// different code paths (Uint64 masking, rejection sampling, ziggurat).
		for i := 0; i < 500; i++ {
			if a, b := std.Float64(), got.Float64(); a != b {
				t.Fatalf("seed %d: Float64 #%d: %v != %v", seed, i, a, b)
			}
			if a, b := std.NormFloat64(), got.NormFloat64(); a != b {
				t.Fatalf("seed %d: NormFloat64 #%d: %v != %v", seed, i, a, b)
			}
			if a, b := std.Intn(97), got.Intn(97); a != b {
				t.Fatalf("seed %d: Intn #%d: %d != %d", seed, i, a, b)
			}
		}
		p, q := std.Perm(31), got.Perm(31)
		for i := range p {
			if p[i] != q[i] {
				t.Fatalf("seed %d: Perm diverges at %d: %v vs %v", seed, i, p, q)
			}
		}
	}
}

// TestRNGStateRoundTrip proves a restored stream continues the original
// sequence exactly: capture state mid-stream, keep drawing from the
// original, then replay the same draws from a fresh RNG restored to the
// captured state.
func TestRNGStateRoundTrip(t *testing.T) {
	orig := NewRNG(12345)
	for i := 0; i < 777; i++ { // advance into the middle of the stream
		orig.Int63()
	}
	st := orig.State()

	// The continuation of the original stream after the capture point.
	want := make([]float64, 0, 900)
	for i := 0; i < 300; i++ {
		want = append(want, float64(orig.Int63()), orig.Float64(), orig.NormFloat64())
	}

	restored := NewRNG(999) // deliberately different seed; state must win
	if err := restored.SetState(st); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	for i, j := 0, 0; i < 300; i++ {
		for _, got := range []float64{float64(restored.Int63()), restored.Float64(), restored.NormFloat64()} {
			if got != want[j] {
				t.Fatalf("draw %d after restore: got %v, want %v", j, got, want[j])
			}
			j++
		}
	}
}

// TestRNGStateIndependent verifies State returns a copy: mutating the
// exported vector must not affect the live stream.
func TestRNGStateIndependent(t *testing.T) {
	r := NewRNG(7)
	st := r.State()
	for i := range st.Vec {
		st.Vec[i] = 0
	}
	ref := NewRNG(7)
	for i := 0; i < 100; i++ {
		if a, b := r.Int63(), ref.Int63(); a != b {
			t.Fatalf("live stream corrupted by mutating exported state at draw %d", i)
		}
	}
}

// TestRNGSetStateRejectsBad checks invalid states are refused and leave the
// RNG untouched.
func TestRNGSetStateRejectsBad(t *testing.T) {
	r := NewRNG(3)
	good := r.State()
	cases := []RNGState{
		{Vec: good.Vec[:100], Tap: good.Tap, Feed: good.Feed},
		{Vec: good.Vec, Tap: -1, Feed: good.Feed},
		{Vec: good.Vec, Tap: good.Tap, Feed: gfsrLen},
		{},
	}
	for i, bad := range cases {
		if err := r.SetState(bad); err == nil {
			t.Fatalf("case %d: SetState accepted invalid state", i)
		}
	}
	ref := NewRNG(3)
	for i := 0; i < 100; i++ {
		if a, b := r.Int63(), ref.Int63(); a != b {
			t.Fatalf("failed SetState mutated the RNG (draw %d)", i)
		}
	}
}
