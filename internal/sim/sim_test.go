package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Advance(2 * time.Second)
	if got := c.Now(); got != 3*time.Second {
		t.Fatalf("clock at %v, want 3s", got)
	}
	if got := c.Hours(); got != 3.0/3600 {
		t.Fatalf("Hours() = %v", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance should panic")
		}
	}()
	NewClock().Advance(-time.Second)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("clock at %v, want 5s", c.Now())
	}
	// Advancing to the past is a no-op.
	c.AdvanceTo(time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("clock moved backwards to %v", c.Now())
	}
}

// TestClockMonotoneProperty drives the clock with arbitrary operations and
// checks it never decreases.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(ops []uint16, toFlags []bool) bool {
		c := NewClock()
		prev := time.Duration(0)
		for i, op := range ops {
			d := time.Duration(op) * time.Millisecond
			if i < len(toFlags) && toFlags[i] {
				c.AdvanceTo(d)
			} else {
				c.Advance(d)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 8*1000*time.Microsecond {
		t.Fatalf("concurrent advance lost updates: %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	if NewRNG(1).Float64() == NewRNG(2).Float64() {
		t.Fatal("different seeds should diverge (first draw)")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Float64() == f2.Float64() {
		t.Fatal("sibling forks should not share streams")
	}
}

func TestGaussianMoments(t *testing.T) {
	r := NewRNG(3)
	var sum, sumSq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Gaussian(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("gaussian mean %.3f, want ≈10", mean)
	}
	if variance < 3.7 || variance > 4.3 {
		t.Fatalf("gaussian variance %.3f, want ≈4", variance)
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 8)
		if v < -3 || v >= 8 {
			t.Fatalf("uniform sample %v outside [-3,8)", v)
		}
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 1.2, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 20000; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("zipf sample %d out of range", k)
		}
		counts[k]++
	}
	if z.N() != 1000 {
		t.Fatalf("N() = %d", z.N())
	}
	// Key 0 must be hottest by a wide margin.
	if counts[0] < counts[500]*2 {
		t.Fatalf("zipf not skewed: c0=%d c500=%d", counts[0], counts[500])
	}
}

func TestZipfDegenerateExponent(t *testing.T) {
	// s <= 1 must not panic (clamped internally).
	z := NewZipf(NewRNG(1), 0.5, 100)
	for i := 0; i < 100; i++ {
		if z.Next() >= 100 {
			t.Fatal("sample out of range")
		}
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-1, 0, 10, 0}, {11, 0, 10, 10}, {0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}
