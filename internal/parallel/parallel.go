// Package parallel is the deterministic fork–join layer the ML substrate
// (random forest, PCA, GA, NN/DDPG) and the mathx kernels run on.
//
// Determinism is the design constraint: a tuning run must produce
// bit-identical forests, eigenvectors, populations and network weights for
// a given seed no matter how many workers execute it. Two rules enforce
// that:
//
//  1. Work is split into fixed chunks whose boundaries depend only on the
//     problem size and the grain — never on the worker count or on
//     goroutine scheduling. Workers pull chunk indices from a shared
//     counter, so *which* worker runs a chunk varies, but *what* each
//     chunk computes does not.
//  2. Reductions never happen on worker goroutines. ReduceOrdered stores
//     one partial result per chunk and folds them on the calling
//     goroutine in ascending chunk order, so floating-point reduction
//     order is fixed.
//
// Callers that need randomness inside parallel work must pre-seed one RNG
// per task (sim.RNG.Fork in task order) before fanning out; an RNG stream
// must never be shared across chunks.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride is the global worker-count override; 0 means "use
// runtime.GOMAXPROCS(0)".
var workerOverride atomic.Int32

// Workers returns the number of goroutines a fan-out may use: the value
// set by SetWorkers, or GOMAXPROCS when unset.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count (n <= 0 restores the GOMAXPROCS
// default) and returns the previous override (0 if none was set), so
// tests can restore it with defer SetWorkers(SetWorkers(1)).
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int32(n)))
}

// spawnObserver, when set, is called with the goroutine count each time a
// fan-out actually spawns workers. It exists so tests can assert that
// small inputs never leave the serial path.
var spawnObserver atomic.Pointer[func(workers int)]

// SetSpawnObserver registers f to be invoked whenever For fans out (nil
// clears it). Test hook only; the callback must be safe for concurrent
// use across fan-outs.
func SetSpawnObserver(f func(workers int)) {
	if f == nil {
		spawnObserver.Store(nil)
		return
	}
	spawnObserver.Store(&f)
}

// Chunks returns how many fixed-size chunks For splits n items into at
// the given grain. The count depends only on n and grain — not on the
// worker setting — which is what keeps chunked reductions deterministic.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// For runs fn over [0, n) split into contiguous chunks of at most grain
// items. fn is called once per chunk with a half-open index range; chunks
// never overlap, so fn may write to per-index state without locking. With
// one worker (or a single chunk) everything runs inline on the calling
// goroutine and no goroutine is spawned.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := Workers()
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		for c := 0; c < chunks; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	if obs := spawnObserver.Load(); obs != nil {
		(*obs)(w)
	}
	var next atomic.Int64
	work := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 0; i < w-1; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the calling goroutine is worker 0
	wg.Wait()
}

// ReduceOrdered maps chunks of [0, n) in parallel and folds the partial
// results on the calling goroutine in ascending chunk order: mapChunk
// runs concurrently (one call per chunk), fold runs serially. Because
// chunk boundaries are fixed by n and grain alone, the reduction
// association — and therefore every floating-point bit of the result —
// is identical for any worker count.
func ReduceOrdered[T any](n, grain int, mapChunk func(lo, hi int) T, fold func(acc, part T) T, init T) T {
	if grain < 1 {
		grain = 1
	}
	chunks := Chunks(n, grain)
	if chunks == 0 {
		return init
	}
	parts := make([]T, chunks)
	For(n, grain, func(lo, hi int) {
		parts[lo/grain] = mapChunk(lo, hi)
	})
	acc := init
	for _, p := range parts {
		acc = fold(acc, p)
	}
	return acc
}
