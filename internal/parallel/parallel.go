// Package parallel is the deterministic fork–join layer the ML substrate
// (random forest, PCA, GA, NN/DDPG) and the mathx kernels run on.
//
// Determinism is the design constraint: a tuning run must produce
// bit-identical forests, eigenvectors, populations and network weights for
// a given seed no matter how many workers execute it. Two rules enforce
// that:
//
//  1. Work is split into fixed chunks whose boundaries depend only on the
//     problem size and the grain — never on the worker count or on
//     goroutine scheduling. Workers pull chunk indices from a shared
//     counter, so *which* worker runs a chunk varies, but *what* each
//     chunk computes does not.
//  2. Reductions never happen on worker goroutines. ReduceOrdered stores
//     one partial result per chunk and folds them on the calling
//     goroutine in ascending chunk order, so floating-point reduction
//     order is fixed.
//
// Callers that need randomness inside parallel work must pre-seed one RNG
// per task (sim.RNG.Fork in task order) before fanning out; an RNG stream
// must never be shared across chunks.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// workerOverride is the global worker-count override; 0 means "use
// runtime.GOMAXPROCS(0)".
var workerOverride atomic.Int32

// Workers returns the number of goroutines a fan-out may use: the value
// set by SetWorkers, or GOMAXPROCS when unset.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count (n <= 0 restores the GOMAXPROCS
// default) and returns the previous override (0 if none was set), so
// tests can restore it with defer SetWorkers(SetWorkers(1)).
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int32(n)))
}

// spawnObserver, when set, is called with the goroutine count each time a
// fan-out actually spawns workers. It exists so tests can assert that
// small inputs never leave the serial path.
var spawnObserver atomic.Pointer[func(workers int)]

// SetSpawnObserver registers f to be invoked whenever For fans out (nil
// clears it). Test hook only; the callback must be safe for concurrent
// use across fan-outs.
func SetSpawnObserver(f func(workers int)) {
	if f == nil {
		spawnObserver.Store(nil)
		return
	}
	spawnObserver.Store(&f)
}

// Aggregate fan-out statistics. The serial path pays one atomic add per
// For call (chunks are coarse, so this is noise next to the chunk work);
// only the spawn path reads the wall clock, so timing never touches the
// single-worker fast path. The counters exist for the observability
// layer (internal/telemetry reads them at export time) and never feed
// back into scheduling, so they cannot perturb determinism.
var (
	statFanouts      atomic.Int64 // fan-outs that actually spawned workers
	statChunks       atomic.Int64 // chunks executed by spawned fan-outs
	statInlineChunks atomic.Int64 // chunks executed inline (serial path)
	statBusyNs       atomic.Int64 // summed per-worker busy time
	statSpanNs       atomic.Int64 // fan-out wall time × worker count
)

// StatsSnapshot is a point-in-time copy of the fan-out counters.
type StatsSnapshot struct {
	Fanouts      int64
	Chunks       int64
	InlineChunks int64
	BusyNs       int64
	SpanNs       int64
}

// Stats returns the current fan-out statistics.
func Stats() StatsSnapshot {
	return StatsSnapshot{
		Fanouts:      statFanouts.Load(),
		Chunks:       statChunks.Load(),
		InlineChunks: statInlineChunks.Load(),
		BusyNs:       statBusyNs.Load(),
		SpanNs:       statSpanNs.Load(),
	}
}

// BusySeconds is the summed time workers spent executing chunks.
func (s StatsSnapshot) BusySeconds() float64 { return float64(s.BusyNs) / 1e9 }

// IdleSeconds is the summed time workers spent inside fan-outs without a
// chunk to run (steal loop spinning down, waiting on the slowest chunk).
func (s StatsSnapshot) IdleSeconds() float64 {
	idle := float64(s.SpanNs-s.BusyNs) / 1e9
	if idle < 0 {
		return 0
	}
	return idle
}

// Chunks returns how many fixed-size chunks For splits n items into at
// the given grain. The count depends only on n and grain — not on the
// worker setting — which is what keeps chunked reductions deterministic.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// For runs fn over [0, n) split into contiguous chunks of at most grain
// items. fn is called once per chunk with a half-open index range; chunks
// never overlap, so fn may write to per-index state without locking. With
// one worker (or a single chunk) everything runs inline on the calling
// goroutine and no goroutine is spawned.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := Workers()
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		statInlineChunks.Add(int64(chunks))
		for c := 0; c < chunks; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	if obs := spawnObserver.Load(); obs != nil {
		(*obs)(w)
	}
	statFanouts.Add(1)
	statChunks.Add(int64(chunks))
	fanoutStart := time.Now()
	var next atomic.Int64
	work := func() {
		busyStart := time.Now()
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				break
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		statBusyNs.Add(int64(time.Since(busyStart)))
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 0; i < w-1; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the calling goroutine is worker 0
	wg.Wait()
	statSpanNs.Add(int64(time.Since(fanoutStart)) * int64(w))
}

// ReduceOrdered maps chunks of [0, n) in parallel and folds the partial
// results on the calling goroutine in ascending chunk order: mapChunk
// runs concurrently (one call per chunk), fold runs serially. Because
// chunk boundaries are fixed by n and grain alone, the reduction
// association — and therefore every floating-point bit of the result —
// is identical for any worker count.
func ReduceOrdered[T any](n, grain int, mapChunk func(lo, hi int) T, fold func(acc, part T) T, init T) T {
	if grain < 1 {
		grain = 1
	}
	chunks := Chunks(n, grain)
	if chunks == 0 {
		return init
	}
	parts := make([]T, chunks)
	For(n, grain, func(lo, hi int) {
		parts[lo/grain] = mapChunk(lo, hi)
	})
	acc := init
	for _, p := range parts {
		acc = fold(acc, p)
	}
	return acc
}
