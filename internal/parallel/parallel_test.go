package parallel

import (
	"sync/atomic"
	"testing"

	"github.com/hunter-cdb/hunter/internal/sim"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	for _, tc := range []struct{ n, grain int }{
		{0, 1}, {1, 1}, {7, 3}, {100, 1}, {100, 7}, {100, 100}, {100, 1000}, {1024, 64},
	} {
		hits := make([]int32, tc.n)
		For(tc.n, tc.grain, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d grain=%d: bad chunk [%d,%d)", tc.n, tc.grain, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d grain=%d: index %d visited %d times", tc.n, tc.grain, i, h)
			}
		}
	}
}

func TestChunksIndependentOfWorkers(t *testing.T) {
	for _, w := range []int{1, 2, 5, 16} {
		defer SetWorkers(SetWorkers(w))
		if got := Chunks(100, 7); got != 15 {
			t.Fatalf("workers=%d: Chunks(100,7) = %d, want 15", w, got)
		}
	}
	if Chunks(0, 4) != 0 || Chunks(-1, 4) != 0 {
		t.Fatal("empty ranges must have zero chunks")
	}
	if Chunks(5, 0) != 5 {
		t.Fatal("grain < 1 must behave like grain 1")
	}
}

// TestChunkBoundariesIndependentOfWorkers records the chunk ranges fn saw
// and asserts they are the same set for 1 worker and 8 workers.
func TestChunkBoundariesIndependentOfWorkers(t *testing.T) {
	collect := func(workers int) map[[2]int]bool {
		defer SetWorkers(SetWorkers(workers))
		got := make(chan [2]int, 64)
		For(100, 9, func(lo, hi int) { got <- [2]int{lo, hi} })
		close(got)
		set := make(map[[2]int]bool)
		for r := range got {
			set[r] = true
		}
		return set
	}
	serial, par := collect(1), collect(8)
	if len(serial) != len(par) {
		t.Fatalf("chunk counts differ: %d vs %d", len(serial), len(par))
	}
	for r := range serial {
		if !par[r] {
			t.Fatalf("chunk %v missing under 8 workers", r)
		}
	}
}

func TestSerialPathNeverSpawns(t *testing.T) {
	var spawns atomic.Int32
	SetSpawnObserver(func(int) { spawns.Add(1) })
	defer SetSpawnObserver(nil)

	// One worker: always inline.
	prev := SetWorkers(1)
	For(1000, 1, func(lo, hi int) {})
	SetWorkers(prev)

	// Many workers but a single chunk: still inline.
	prev = SetWorkers(8)
	For(10, 100, func(lo, hi int) {})
	SetWorkers(prev)

	if n := spawns.Load(); n != 0 {
		t.Fatalf("serial paths spawned workers %d times", n)
	}
}

func TestFanOutReportsWorkerCount(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	var reported atomic.Int32
	SetSpawnObserver(func(w int) { reported.Store(int32(w)) })
	defer SetSpawnObserver(nil)
	For(100, 1, func(lo, hi int) {})
	if reported.Load() != 4 {
		t.Fatalf("observer saw %d workers, want 4", reported.Load())
	}
	// More workers than chunks: capped at the chunk count.
	reported.Store(0)
	SetWorkers(16)
	For(6, 3, func(lo, hi int) {})
	if reported.Load() != 2 {
		t.Fatalf("observer saw %d workers, want 2 (chunk-capped)", reported.Load())
	}
}

// TestReduceOrderedBitIdentical sums a float series whose reduction order
// matters and asserts the result is bit-identical across worker counts.
func TestReduceOrderedBitIdentical(t *testing.T) {
	rng := sim.NewRNG(42)
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = rng.Gaussian(0, 1) * 1e10 // wide magnitude: association-sensitive
	}
	sum := func(workers int) float64 {
		defer SetWorkers(SetWorkers(workers))
		return ReduceOrdered(len(xs), 128,
			func(lo, hi int) float64 {
				var s float64
				for i := lo; i < hi; i++ {
					s += xs[i]
				}
				return s
			},
			func(acc, p float64) float64 { return acc + p }, 0)
	}
	ref := sum(1)
	for _, w := range []int{2, 3, 8, 32} {
		if got := sum(w); got != ref {
			t.Fatalf("workers=%d: sum %v != %v (1 worker)", w, got, ref)
		}
	}
}

func TestReduceOrderedEmpty(t *testing.T) {
	got := ReduceOrdered(0, 4, func(lo, hi int) int { return 1 },
		func(a, b int) int { return a + b }, -7)
	if got != -7 {
		t.Fatalf("empty reduce = %d, want init", got)
	}
}

func TestSetWorkersRestore(t *testing.T) {
	if prev := SetWorkers(3); prev != 0 {
		t.Fatalf("unexpected initial override %d", prev)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	if prev := SetWorkers(0); prev != 3 {
		t.Fatalf("restore returned %d, want 3", prev)
	}
}
