// Package safety implements the online safe-tuning guard that sits between
// the recommender and the serving instance: replicated canary measurement
// with outlier-robust aggregation (median-of-k, after TUNA's warning that
// single cloud samples are too noisy to gate on), a rolling-baseline
// guardrail ("never deploy measured worse than baseline minus margin"), a
// trust region that clamps per-deployment knob deltas and widens/shrinks on
// success/failure, SLO-aware monitoring of the deployed config, and the
// rollback/quarantine state machine from OnlineTune's safety assessment
// loop. The guard is pure bookkeeping over values its caller measured — it
// never touches a clock or an RNG — so it is deterministic by construction
// and its whole state snapshots into a flat gob-friendly struct.
package safety

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/hunter-cdb/hunter/internal/simdb"
)

// Options configures the guard. Zero values select the documented defaults
// (see withDefaults); the struct is flat scalars so checkpoint fingerprints
// can compare two option sets directly.
type Options struct {
	// Guardrails arms the canary gate, trust region, SLO monitor and
	// automatic rollback. When false the session still tunes online
	// (deploying candidates as they improve) but nothing blocks or
	// reverts a bad deploy — the "naive online" baseline.
	Guardrails bool
	// Margin is the fraction below the rolling baseline a measurement may
	// sit before it counts as a regression (default 0.05).
	Margin float64
	// CanaryReplicas is how many replicated canary measurements feed the
	// median aggregate (default 3).
	CanaryReplicas int
	// TrustRadius is the initial per-knob step bound in normalized [0,1]
	// space (default 0.25). RadiusWiden/RadiusShrink scale it on deploy
	// success/guardrail failure, bounded by RadiusMin/RadiusMax.
	TrustRadius  float64
	RadiusWiden  float64
	RadiusShrink float64
	RadiusMin    float64
	RadiusMax    float64
	// SLOP99Ms is the p99 latency ceiling in milliseconds; 0 disables the
	// latency SLO.
	SLOP99Ms float64
	// SLOFloorTPS is the throughput floor; 0 disables it.
	SLOFloorTPS float64
	// ViolationLimit is how many consecutive monitor violations trigger a
	// rollback (default 2).
	ViolationLimit int
	// MonitorEvery and DeployEvery pace the online loop in tuning waves
	// (defaults 2 and 4).
	MonitorEvery int
	DeployEvery  int
	// BaselineWindow is the size of the rolling throughput window the
	// baseline median is taken over (default 8).
	BaselineWindow int
	// DriftThreshold is the relative throughput divergence from the
	// rolling baseline that counts as a drift signal; 0 disables drift
	// detection.
	DriftThreshold float64
	// DriftWindow is how many consecutive drift signals confirm a drift
	// (default 2).
	DriftWindow int
	// QuarantineRadius is the L∞ radius (normalized knob space) around a
	// rolled-back point that subsequent candidates must avoid
	// (default 0.05).
	QuarantineRadius float64
}

// WithDefaults returns a copy with every unset field at its default.
func (o Options) WithDefaults() Options {
	if o.Margin == 0 {
		o.Margin = 0.05
	}
	if o.CanaryReplicas == 0 {
		o.CanaryReplicas = 3
	}
	if o.TrustRadius == 0 {
		o.TrustRadius = 0.25
	}
	if o.RadiusWiden == 0 {
		o.RadiusWiden = 1.25
	}
	if o.RadiusShrink == 0 {
		o.RadiusShrink = 0.5
	}
	if o.RadiusMin == 0 {
		o.RadiusMin = 0.02
	}
	if o.RadiusMax == 0 {
		o.RadiusMax = 1.0
	}
	if o.ViolationLimit == 0 {
		o.ViolationLimit = 2
	}
	if o.MonitorEvery == 0 {
		o.MonitorEvery = 2
	}
	if o.DeployEvery == 0 {
		o.DeployEvery = 4
	}
	if o.BaselineWindow == 0 {
		o.BaselineWindow = 8
	}
	if o.DriftWindow == 0 {
		o.DriftWindow = 2
	}
	if o.QuarantineRadius == 0 {
		o.QuarantineRadius = 0.05
	}
	return o
}

// Validate rejects option sets the state machine cannot run with.
func (o Options) Validate() error {
	o = o.WithDefaults()
	if o.Margin <= 0 || o.Margin >= 1 {
		return fmt.Errorf("safety: margin %g outside (0,1)", o.Margin)
	}
	if o.CanaryReplicas < 1 {
		return fmt.Errorf("safety: canary replicas %d < 1", o.CanaryReplicas)
	}
	if o.TrustRadius <= 0 || o.TrustRadius > 1 {
		return fmt.Errorf("safety: trust radius %g outside (0,1]", o.TrustRadius)
	}
	if o.RadiusWiden < 1 {
		return fmt.Errorf("safety: radius widen factor %g < 1", o.RadiusWiden)
	}
	if o.RadiusShrink <= 0 || o.RadiusShrink >= 1 {
		return fmt.Errorf("safety: radius shrink factor %g outside (0,1)", o.RadiusShrink)
	}
	if o.RadiusMin <= 0 || o.RadiusMin > o.RadiusMax {
		return fmt.Errorf("safety: radius bounds [%g,%g] invalid", o.RadiusMin, o.RadiusMax)
	}
	if o.ViolationLimit < 1 {
		return fmt.Errorf("safety: violation limit %d < 1", o.ViolationLimit)
	}
	if o.MonitorEvery < 1 || o.DeployEvery < 1 {
		return fmt.Errorf("safety: monitor/deploy cadence must be >= 1 wave")
	}
	if o.BaselineWindow < 1 {
		return fmt.Errorf("safety: baseline window %d < 1", o.BaselineWindow)
	}
	if o.DriftThreshold < 0 {
		return fmt.Errorf("safety: drift threshold %g < 0", o.DriftThreshold)
	}
	return nil
}

// Counts tallies the guard's typed outcomes for reporting and telemetry.
type Counts struct {
	Canaries      int
	Deploys       int
	Blocks        int
	Rollbacks     int
	SLOViolations int
	Drifts        int
}

// Region is a quarantined ball in normalized knob space.
type Region struct {
	Center []float64
	Radius float64
}

// Verdict is the outcome of one monitoring probe of the deployed config.
type Verdict struct {
	// BaselineTPS is the rolling-median baseline the probe was judged
	// against (0 while the window is empty).
	BaselineTPS float64
	// SLOBreach / BelowBaseline classify the violation, Violation is
	// their union.
	SLOBreach     bool
	BelowBaseline bool
	Violation     bool
	// RollbackDue fires when consecutive violations reach the limit.
	RollbackDue bool
	// DriftDetected fires when consecutive divergence signals reach the
	// drift window.
	DriftDetected bool
}

// Guard is the online safety state machine. It is not safe for concurrent
// use; the session drives it from the single wave-loop goroutine.
type Guard struct {
	opts Options

	radius     float64
	baseline   []float64 // rolling window of monitored deployed-config TPS
	violations int       // consecutive monitor violations
	driftHits  int       // consecutive drift-divergence signals
	quarantine []Region
	blocked    map[string]bool // candidate keys gated away since last reset
	counts     Counts
}

// NewGuard builds a guard from validated options.
func NewGuard(opts Options) (*Guard, error) {
	opts = opts.WithDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Guard{opts: opts, radius: opts.TrustRadius, blocked: map[string]bool{}}, nil
}

// Options returns the guard's defaulted options.
func (g *Guard) Options() Options { return g.opts }

// Radius returns the current trust-region radius.
func (g *Guard) Radius() float64 { return g.radius }

// Counts returns the outcome tallies so far.
func (g *Guard) Counts() Counts { return g.counts }

// Baseline returns the rolling-median baseline TPS (0 while the window is
// empty, i.e. just after a reset).
func (g *Guard) Baseline() float64 {
	if len(g.baseline) == 0 {
		return 0
	}
	w := append([]float64(nil), g.baseline...)
	sort.Float64s(w)
	return w[(len(w)-1)/2]
}

// ClampStep bounds the move from the current point toward a candidate to
// the trust region: each normalized knob delta is clamped to ±radius and
// the result to [0,1]. The second return reports whether any clamping
// happened.
func (g *Guard) ClampStep(from, to []float64) ([]float64, bool) {
	out := make([]float64, len(to))
	clamped := false
	for i := range to {
		d := to[i]
		if i < len(from) {
			delta := to[i] - from[i]
			if delta > g.radius {
				delta, clamped = g.radius, true
			} else if delta < -g.radius {
				delta, clamped = -g.radius, true
			}
			d = from[i] + delta
		}
		if d < 0 {
			d, clamped = 0, true
		} else if d > 1 {
			d, clamped = 1, true
		}
		out[i] = d
	}
	return out, clamped
}

// Aggregate folds replicated canary measurements into one robust estimate:
// failed replicas are dropped, a strict majority of survivors is required,
// and the survivor with median throughput is returned (the lower median —
// the pessimistic half — when the count is even).
func (g *Guard) Aggregate(perfs []simdb.Perf) (simdb.Perf, bool) {
	ok := perfs[:0:0]
	for _, p := range perfs {
		if !p.Failed {
			ok = append(ok, p)
		}
	}
	if 2*len(ok) <= len(perfs) {
		return simdb.FailedPerf(), false
	}
	sort.SliceStable(ok, func(i, j int) bool { return ok[i].ThroughputTPS < ok[j].ThroughputTPS })
	return ok[(len(ok)-1)/2], true
}

// GateDeploy decides whether a canary aggregate may be deployed. The
// returned reason names the tripped guardrail for telemetry.
func (g *Guard) GateDeploy(canary simdb.Perf, baseline float64) (bool, string) {
	if canary.Failed {
		return false, "canary_failed"
	}
	if g.opts.SLOP99Ms > 0 && canary.P99LatencyMs > g.opts.SLOP99Ms {
		return false, "slo_p99"
	}
	if g.opts.SLOFloorTPS > 0 && canary.ThroughputTPS < g.opts.SLOFloorTPS {
		return false, "slo_tps"
	}
	if baseline > 0 && canary.ThroughputTPS < baseline*(1-g.opts.Margin) {
		return false, "baseline_margin"
	}
	return true, ""
}

// ObserveMonitor feeds one monitoring probe of the deployed config through
// the violation and drift-detection state machines. The baseline is taken
// over the window *before* this probe joins it, so a sudden collapse is
// judged against the healthy past.
func (g *Guard) ObserveMonitor(p simdb.Perf) Verdict {
	v := Verdict{BaselineTPS: g.Baseline()}
	if g.opts.SLOP99Ms > 0 && p.P99LatencyMs > g.opts.SLOP99Ms {
		v.SLOBreach = true
	}
	if g.opts.SLOFloorTPS > 0 && p.ThroughputTPS < g.opts.SLOFloorTPS {
		v.SLOBreach = true
	}
	if v.BaselineTPS > 0 && p.ThroughputTPS < v.BaselineTPS*(1-g.opts.Margin) {
		v.BelowBaseline = true
	}
	v.Violation = v.SLOBreach || v.BelowBaseline
	if v.SLOBreach {
		g.counts.SLOViolations++
	}
	if v.Violation {
		g.violations++
	} else {
		g.violations = 0
	}
	if g.opts.Guardrails && g.violations >= g.opts.ViolationLimit {
		v.RollbackDue = true
	}
	if g.opts.DriftThreshold > 0 && v.BaselineTPS > 0 &&
		math.Abs(p.ThroughputTPS-v.BaselineTPS) > g.opts.DriftThreshold*v.BaselineTPS {
		g.driftHits++
		if g.driftHits >= g.opts.DriftWindow {
			v.DriftDetected = true
		}
	} else {
		g.driftHits = 0
	}
	g.push(p.ThroughputTPS)
	return v
}

func (g *Guard) push(tps float64) {
	g.baseline = append(g.baseline, tps)
	if n := len(g.baseline) - g.opts.BaselineWindow; n > 0 {
		g.baseline = append(g.baseline[:0], g.baseline[n:]...)
	}
}

// NoteCanary records one replicated canary wave.
func (g *Guard) NoteCanary() { g.counts.Canaries++ }

// NoteDeploy records a successful guarded deploy: the trust region widens
// and the rolling baseline resets to the new config's canary median, so
// future probes are judged against the new normal.
func (g *Guard) NoteDeploy(seedTPS float64) {
	g.counts.Deploys++
	g.radius = math.Min(g.radius*g.opts.RadiusWiden, g.opts.RadiusMax)
	g.violations = 0
	g.baseline = g.baseline[:0]
	if seedTPS > 0 {
		g.push(seedTPS)
	}
}

// NoteBlock records a guardrail block of the candidate with the given key:
// the trust region shrinks and the key is gated until the next reset.
func (g *Guard) NoteBlock(key string) {
	g.counts.Blocks++
	g.radius = math.Max(g.radius*g.opts.RadiusShrink, g.opts.RadiusMin)
	g.blocked[key] = true
}

// NoteRollback records an automatic rollback: the offending point is
// quarantined, the block list and violation counter clear (the landscape
// has changed), and the baseline window reseeds at the restored config's
// throughput so monitoring re-baselines at the post-rollback normal.
func (g *Guard) NoteRollback(point []float64, seedTPS float64) {
	g.counts.Rollbacks++
	if len(point) > 0 {
		g.quarantine = append(g.quarantine, Region{
			Center: append([]float64(nil), point...),
			Radius: g.opts.QuarantineRadius,
		})
	}
	g.blocked = map[string]bool{}
	g.violations = 0
	g.driftHits = 0
	g.radius = math.Max(g.radius*g.opts.RadiusShrink, g.opts.RadiusMin)
	g.baseline = g.baseline[:0]
	if seedTPS > 0 {
		g.push(seedTPS)
	}
}

// ResetViolations clears the consecutive-violation run without recording a
// rollback. Used when a due rollback resolves to the already-deployed
// configuration (nothing distinct to restore): the violation run restarts,
// but the trust radius, blocked set and rollback tally stay untouched.
func (g *Guard) ResetViolations() { g.violations = 0 }

// NoteDrift records a confirmed workload drift: blocks, violations and the
// baseline window clear because past judgments no longer apply.
func (g *Guard) NoteDrift() {
	g.counts.Drifts++
	g.blocked = map[string]bool{}
	g.violations = 0
	g.driftHits = 0
	g.baseline = g.baseline[:0]
}

// Blocked reports whether a candidate key was gated since the last reset.
func (g *Guard) Blocked(key string) bool { return g.blocked[key] }

// InQuarantine reports whether a normalized point falls inside any
// quarantined region (L∞ distance to the region center).
func (g *Guard) InQuarantine(point []float64) bool {
	for _, r := range g.quarantine {
		if len(r.Center) != len(point) {
			continue
		}
		inside := true
		for i := range point {
			if math.Abs(point[i]-r.Center[i]) > r.Radius {
				inside = false
				break
			}
		}
		if inside {
			return true
		}
	}
	return false
}

// State is the guard's complete serializable state for the checkpoint
// container. Blocked keys are stored sorted so encodings are stable.
type State struct {
	Radius     float64
	Baseline   []float64
	Violations int
	DriftHits  int
	Quarantine []Region
	Blocked    []string
	Counts     Counts
}

// Snapshot exports the full guard state.
func (g *Guard) Snapshot() State {
	keys := make([]string, 0, len(g.blocked))
	for k := range g.blocked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return State{
		Radius:     g.radius,
		Baseline:   append([]float64(nil), g.baseline...),
		Violations: g.violations,
		DriftHits:  g.driftHits,
		Quarantine: append([]Region(nil), g.quarantine...),
		Blocked:    keys,
		Counts:     g.counts,
	}
}

// Restore reinstates a snapshotted state.
func (g *Guard) Restore(st State) {
	g.radius = st.Radius
	g.baseline = append([]float64(nil), st.Baseline...)
	g.violations = st.Violations
	g.driftHits = st.DriftHits
	g.quarantine = append([]Region(nil), st.Quarantine...)
	g.blocked = map[string]bool{}
	for _, k := range st.Blocked {
		g.blocked[k] = true
	}
	g.counts = st.Counts
}

// Report is the guard's final tally for session reports.
type Report struct {
	Guardrails  bool    `json:"guardrails"`
	Canaries    int     `json:"canaries"`
	Deploys     int     `json:"deploys"`
	Blocks      int     `json:"guardrail_blocks"`
	Rollbacks   int     `json:"rollbacks"`
	SLOBreaches int     `json:"slo_violations"`
	Drifts      int     `json:"drifts_detected"`
	Quarantined int     `json:"quarantined_regions"`
	FinalRadius float64 `json:"final_trust_radius"`
	BaselineTPS float64 `json:"baseline_tps"`
}

// ReportNow summarizes the guard's current state.
func (g *Guard) ReportNow() Report {
	return Report{
		Guardrails:  g.opts.Guardrails,
		Canaries:    g.counts.Canaries,
		Deploys:     g.counts.Deploys,
		Blocks:      g.counts.Blocks,
		Rollbacks:   g.counts.Rollbacks,
		SLOBreaches: g.counts.SLOViolations,
		Drifts:      g.counts.Drifts,
		Quarantined: len(g.quarantine),
		FinalRadius: g.radius,
		BaselineTPS: g.Baseline(),
	}
}

// Summary renders the report as the indented block the CLIs print, in the
// style of ResilienceReport.Summary.
func (r Report) Summary() string {
	var b strings.Builder
	mode := "guardrails on"
	if !r.Guardrails {
		mode = "guardrails off (naive online)"
	}
	fmt.Fprintf(&b, "online safety (%s):\n", mode)
	fmt.Fprintf(&b, "  canary waves:     %d\n", r.Canaries)
	fmt.Fprintf(&b, "  online deploys:   %d\n", r.Deploys)
	fmt.Fprintf(&b, "  guardrail blocks: %d\n", r.Blocks)
	fmt.Fprintf(&b, "  rollbacks:        %d\n", r.Rollbacks)
	fmt.Fprintf(&b, "  slo violations:   %d\n", r.SLOBreaches)
	fmt.Fprintf(&b, "  drifts detected:  %d\n", r.Drifts)
	fmt.Fprintf(&b, "  quarantined:      %d region(s)\n", r.Quarantined)
	fmt.Fprintf(&b, "  trust radius:     %.3f\n", r.FinalRadius)
	return b.String()
}
