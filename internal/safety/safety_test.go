package safety

import (
	"reflect"
	"strings"
	"testing"

	"github.com/hunter-cdb/hunter/internal/simdb"
)

func newTestGuard(t *testing.T, opts Options) *Guard {
	t.Helper()
	g, err := NewGuard(opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func perf(tps, p99 float64) simdb.Perf {
	return simdb.Perf{ThroughputTPS: tps, AvgLatencyMs: p99 / 2, P95LatencyMs: p99 * 0.8, P99LatencyMs: p99}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Margin: 1.5},
		{CanaryReplicas: -1},
		{TrustRadius: 2},
		{RadiusWiden: 0.5},
		{RadiusShrink: 1.5},
		{RadiusMin: 0.5, RadiusMax: 0.1},
		{ViolationLimit: -1},
		{MonitorEvery: -1},
		{DriftThreshold: -0.1},
	}
	for _, o := range bad {
		if _, err := NewGuard(o); err == nil {
			t.Fatalf("options %+v should be rejected", o)
		}
	}
	if _, err := NewGuard(Options{}); err != nil {
		t.Fatalf("zero options should default to valid: %v", err)
	}
}

func TestClampStep(t *testing.T) {
	g := newTestGuard(t, Options{TrustRadius: 0.1})
	got, clamped := g.ClampStep([]float64{0.5, 0.5, 0.05}, []float64{0.9, 0.45, -0.2})
	if !clamped {
		t.Fatal("expected clamping")
	}
	want := []float64{0.6, 0.45, 0}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("dim %d: got %g want %g", i, got[i], want[i])
		}
	}
	got, clamped = g.ClampStep([]float64{0.5}, []float64{0.55})
	if clamped || got[0] != 0.55 {
		t.Fatalf("in-region step should pass through, got %v clamped=%v", got, clamped)
	}
}

func TestAggregateMedianAndMajority(t *testing.T) {
	g := newTestGuard(t, Options{})
	med, ok := g.Aggregate([]simdb.Perf{perf(300, 10), perf(100, 10), perf(200, 10)})
	if !ok || med.ThroughputTPS != 200 {
		t.Fatalf("median of 100/200/300 should be 200, got %v ok=%v", med.ThroughputTPS, ok)
	}
	// Even count takes the pessimistic lower median.
	med, ok = g.Aggregate([]simdb.Perf{perf(100, 10), perf(200, 10), perf(300, 10), perf(400, 10)})
	if !ok || med.ThroughputTPS != 200 {
		t.Fatalf("lower median of 4 should be 200, got %v ok=%v", med.ThroughputTPS, ok)
	}
	// Failed replicas are dropped; a strict majority of survivors is required.
	med, ok = g.Aggregate([]simdb.Perf{perf(100, 10), simdb.FailedPerf(), perf(300, 10)})
	if !ok || med.ThroughputTPS != 100 {
		t.Fatalf("2-of-3 survivors should aggregate to 100, got %v ok=%v", med.ThroughputTPS, ok)
	}
	if _, ok := g.Aggregate([]simdb.Perf{perf(100, 10), simdb.FailedPerf()}); ok {
		t.Fatal("1-of-2 survivors is not a majority")
	}
}

func TestGateDeploy(t *testing.T) {
	g := newTestGuard(t, Options{SLOP99Ms: 50, SLOFloorTPS: 80, Margin: 0.1})
	cases := []struct {
		p        simdb.Perf
		baseline float64
		ok       bool
		reason   string
	}{
		{perf(200, 20), 190, true, ""},
		{simdb.FailedPerf(), 0, false, "canary_failed"},
		{perf(200, 60), 0, false, "slo_p99"},
		{perf(50, 20), 0, false, "slo_tps"},
		{perf(100, 20), 200, false, "baseline_margin"},
		{perf(100, 20), 0, true, ""}, // empty window skips the baseline check
	}
	for i, c := range cases {
		ok, reason := g.GateDeploy(c.p, c.baseline)
		if ok != c.ok || reason != c.reason {
			t.Fatalf("case %d: got (%v,%q) want (%v,%q)", i, ok, reason, c.ok, c.reason)
		}
	}
}

func TestMonitorViolationsAndRollback(t *testing.T) {
	g := newTestGuard(t, Options{Guardrails: true, Margin: 0.1, ViolationLimit: 2})
	// Healthy probes establish the baseline.
	for i := 0; i < 3; i++ {
		if v := g.ObserveMonitor(perf(200, 20)); v.Violation {
			t.Fatalf("healthy probe %d flagged", i)
		}
	}
	v := g.ObserveMonitor(perf(100, 20))
	if !v.Violation || !v.BelowBaseline || v.RollbackDue {
		t.Fatalf("first dip: want violation without rollback, got %+v", v)
	}
	v = g.ObserveMonitor(perf(100, 20))
	if !v.RollbackDue {
		t.Fatalf("second consecutive dip should trigger rollback, got %+v", v)
	}
	// A healthy probe in between resets the run.
	g.NoteRollback([]float64{0.5}, 200)
	g.ObserveMonitor(perf(100, 20))
	g.ObserveMonitor(perf(200, 20))
	if v := g.ObserveMonitor(perf(100, 20)); v.RollbackDue {
		t.Fatal("non-consecutive violations must not trigger rollback")
	}
}

func TestMonitorSLOBreach(t *testing.T) {
	g := newTestGuard(t, Options{Guardrails: true, SLOP99Ms: 50, ViolationLimit: 1})
	v := g.ObserveMonitor(perf(500, 80))
	if !v.SLOBreach || !v.RollbackDue {
		t.Fatalf("p99 80ms over 50ms ceiling should breach and roll back, got %+v", v)
	}
	if g.Counts().SLOViolations != 1 {
		t.Fatalf("slo violation not counted: %+v", g.Counts())
	}
}

func TestDriftDetection(t *testing.T) {
	g := newTestGuard(t, Options{DriftThreshold: 0.3, DriftWindow: 2})
	for i := 0; i < 4; i++ {
		g.ObserveMonitor(perf(200, 20))
	}
	if v := g.ObserveMonitor(perf(120, 20)); v.DriftDetected {
		t.Fatal("one divergent probe should not confirm drift")
	}
	if v := g.ObserveMonitor(perf(120, 20)); !v.DriftDetected {
		t.Fatal("two consecutive divergent probes should confirm drift")
	}
	g.NoteDrift()
	if g.Baseline() != 0 {
		t.Fatal("NoteDrift should clear the baseline window")
	}
	// Upward divergence counts too (the workload got lighter).
	for i := 0; i < 4; i++ {
		g.ObserveMonitor(perf(200, 20))
	}
	g.ObserveMonitor(perf(300, 20))
	if v := g.ObserveMonitor(perf(300, 20)); !v.DriftDetected {
		t.Fatal("upward divergence should also confirm drift")
	}
}

func TestRadiusWidenShrinkBounds(t *testing.T) {
	g := newTestGuard(t, Options{TrustRadius: 0.25, RadiusWiden: 2, RadiusShrink: 0.5, RadiusMin: 0.1, RadiusMax: 0.6})
	g.NoteDeploy(100)
	if g.Radius() != 0.5 {
		t.Fatalf("widen: got %g want 0.5", g.Radius())
	}
	g.NoteDeploy(100)
	if g.Radius() != 0.6 {
		t.Fatalf("widen capped at max: got %g want 0.6", g.Radius())
	}
	for i := 0; i < 5; i++ {
		g.NoteBlock("k")
	}
	if g.Radius() != 0.1 {
		t.Fatalf("shrink floored at min: got %g want 0.1", g.Radius())
	}
}

func TestBlockedClearsOnRollbackAndDrift(t *testing.T) {
	g := newTestGuard(t, Options{})
	g.NoteBlock("a")
	if !g.Blocked("a") || g.Blocked("b") {
		t.Fatal("block bookkeeping wrong")
	}
	g.NoteRollback(nil, 0)
	if g.Blocked("a") {
		t.Fatal("rollback should clear blocked keys")
	}
	g.NoteBlock("c")
	g.NoteDrift()
	if g.Blocked("c") {
		t.Fatal("drift should clear blocked keys")
	}
}

func TestQuarantine(t *testing.T) {
	g := newTestGuard(t, Options{QuarantineRadius: 0.1})
	g.NoteRollback([]float64{0.5, 0.5}, 100)
	if !g.InQuarantine([]float64{0.55, 0.45}) {
		t.Fatal("point inside the quarantined ball not flagged")
	}
	if g.InQuarantine([]float64{0.7, 0.5}) {
		t.Fatal("point outside the quarantined ball flagged")
	}
	if g.InQuarantine([]float64{0.5}) {
		t.Fatal("dimension mismatch must not match")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	g := newTestGuard(t, Options{Guardrails: true, DriftThreshold: 0.3})
	for i := 0; i < 5; i++ {
		g.ObserveMonitor(perf(float64(150+10*i), 20))
	}
	g.NoteCanary()
	g.NoteBlock("cand-1")
	g.NoteBlock("cand-2")
	g.NoteDeploy(210)
	g.ObserveMonitor(perf(100, 20))
	g.NoteRollback([]float64{0.3, 0.7}, 200)
	g.NoteBlock("cand-3")

	st := g.Snapshot()
	h := newTestGuard(t, g.Options())
	h.Restore(st)
	if !reflect.DeepEqual(st, h.Snapshot()) {
		t.Fatalf("snapshot round-trip diverged:\n%+v\n%+v", st, h.Snapshot())
	}
	if h.Radius() != g.Radius() || h.Baseline() != g.Baseline() || !h.Blocked("cand-3") {
		t.Fatal("restored guard behaves differently")
	}
	if !h.InQuarantine([]float64{0.3, 0.7}) {
		t.Fatal("restored guard lost quarantine")
	}
}

func TestReportSummary(t *testing.T) {
	g := newTestGuard(t, Options{Guardrails: true})
	g.NoteCanary()
	g.NoteDeploy(100)
	s := g.ReportNow().Summary()
	for _, want := range []string{"guardrails on", "canary waves:     1", "online deploys:   1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
