// Benchmarks: one per table and figure of the paper's evaluation (§6).
// Each benchmark executes the corresponding experiment end to end at a
// reduced virtual-time scale and reports the wall-clock cost of
// regenerating it; the printed rows/series themselves come from
// cmd/hunter-repro, which runs the same runners at full scale.
//
// Per-iteration work is substantial (whole tuning sessions), so run with
// -benchtime=1x:
//
//	go test -bench=. -benchmem -benchtime=1x
package hunter_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/hunter-cdb/hunter/internal/core"
	"github.com/hunter-cdb/hunter/internal/experiments"
	"github.com/hunter-cdb/hunter/internal/tuner"
	"github.com/hunter-cdb/hunter/internal/workload"
)

// benchScale shrinks the virtual budgets so a full bench sweep stays
// tractable; method-versus-method ratios are preserved.
const benchScale = 0.05

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := experiments.Config{Scale: benchScale, Seed: int64(3000 + i)}
		if err := r.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1StepBreakdown(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFigure1TuningSteps(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFigure4GAConvergence(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5SampleQuality(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6SampleCount(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFigure7PCA(b *testing.B)            { benchExperiment(b, "fig7") }
func BenchmarkFigure8KnobSifting(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFigure9Comparison(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFigure10Drift(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkTable3Ablation(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkTable4Ablation(b *testing.B)        { benchExperiment(b, "table4") }
func BenchmarkTable5Ablation(b *testing.B)        { benchExperiment(b, "table5") }
func BenchmarkTable6Warmup(b *testing.B)          { benchExperiment(b, "table6") }
func BenchmarkFigure11Cost(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFigure12Parallel(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFigure13ModelReuse(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFigure14InstanceTypes(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkAblationPCADim is the DESIGN.md design-choice ablation: the
// compressed-state dimension the CDF criterion selects at different
// variance targets, and the fitness each reaches under an equal budget.
func BenchmarkAblationPCADim(b *testing.B) {
	for _, target := range []float64{0.80, 0.90, 0.99} {
		b.Run(fmt.Sprintf("var=%.2f", target), func(b *testing.B) {
			var dims, fit float64
			for i := 0; i < b.N; i++ {
				s, err := tuner.NewSession(tuner.Request{
					Workload: workload.TPCC(),
					Budget:   10 * time.Hour,
					Seed:     int64(4000 + i),
				})
				if err != nil {
					b.Fatal(err)
				}
				h := core.New(core.Options{PCAVariance: target})
				if err := h.Tune(s); err != nil {
					s.Close()
					b.Fatal(err)
				}
				best, _ := s.Best()
				dims += float64(h.PCADim())
				fit += s.Fitness(best.Perf)
				s.Close()
			}
			b.ReportMetric(dims/float64(b.N), "pca-dims")
			b.ReportMetric(fit/float64(b.N), "fitness")
		})
	}
}
